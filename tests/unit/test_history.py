"""Unit tests for update histories (Hx) and history snapshots."""

import pytest

from repro.core.history import (
    HistorySet,
    HistorySnapshot,
    UpdateHistory,
    history_is_consecutive,
)
from repro.core.update import Update


def make(var: str, seqno: int, value: float = 0.0) -> Update:
    return Update(var, seqno, value)


class TestUpdateHistory:
    def test_degree_validation(self):
        with pytest.raises(ValueError):
            UpdateHistory("x", 0)

    def test_undefined_until_degree_updates(self):
        history = UpdateHistory("x", 2)
        assert not history.is_defined
        history.push(make("x", 1))
        assert not history.is_defined
        history.push(make("x", 2))
        assert history.is_defined

    def test_indexing_follows_paper(self):
        # After update 7 arrives, Hx[0] is 7x and Hx[-1] is the previous.
        history = UpdateHistory("x", 2)
        history.push(make("x", 5))
        history.push(make("x", 7))
        assert history[0].seqno == 7
        assert history[-1].seqno == 5

    def test_gap_preserved(self):
        # 6x lost: Hx[-1] is 5x when 7x arrives.
        history = UpdateHistory("x", 2)
        history.push(make("x", 5))
        history.push(make("x", 7))
        assert history[-1].seqno == 5

    def test_ring_evicts_oldest(self):
        history = UpdateHistory("x", 2)
        for seqno in (1, 2, 3):
            history.push(make("x", seqno))
        assert history[0].seqno == 3
        assert history[-1].seqno == 2

    def test_positive_index_rejected(self):
        history = UpdateHistory("x", 1)
        history.push(make("x", 1))
        with pytest.raises(IndexError):
            history[1]

    def test_access_before_defined_raises(self):
        history = UpdateHistory("x", 2)
        history.push(make("x", 1))
        with pytest.raises(LookupError):
            history[0]

    def test_wrong_variable_rejected(self):
        history = UpdateHistory("x", 1)
        with pytest.raises(ValueError):
            history.push(make("y", 1))

    def test_non_increasing_seqno_rejected(self):
        history = UpdateHistory("x", 2)
        history.push(make("x", 3))
        with pytest.raises(ValueError):
            history.push(make("x", 3))
        with pytest.raises(ValueError):
            history.push(make("x", 2))

    def test_snapshot_most_recent_first(self):
        history = UpdateHistory("x", 3)
        for seqno in (1, 2, 4):
            history.push(make("x", seqno))
        assert [u.seqno for u in history.snapshot()] == [4, 2, 1]

    def test_snapshot_undefined_raises(self):
        with pytest.raises(LookupError):
            UpdateHistory("x", 1).snapshot()

    def test_len(self):
        history = UpdateHistory("x", 3)
        assert len(history) == 0
        history.push(make("x", 1))
        assert len(history) == 1


class TestHistorySet:
    def test_requires_variables(self):
        with pytest.raises(ValueError):
            HistorySet({})

    def test_defined_when_all_defined(self):
        histories = HistorySet({"x": 1, "y": 2})
        histories.push(make("x", 1))
        assert not histories.is_defined
        histories.push(make("y", 1))
        assert not histories.is_defined
        histories.push(make("y", 2))
        assert histories.is_defined

    def test_routes_by_variable(self):
        histories = HistorySet({"x": 1, "y": 1})
        histories.push(make("x", 1))
        histories.push(make("y", 4))
        assert histories["x"][0].seqno == 1
        assert histories["y"][0].seqno == 4

    def test_ignores_unknown_variables(self):
        histories = HistorySet({"x": 1})
        histories.push(make("z", 1))  # silently dropped
        assert not histories.is_defined

    def test_contains(self):
        histories = HistorySet({"x": 1})
        assert "x" in histories
        assert "y" not in histories

    def test_variables(self):
        assert set(HistorySet({"x": 1, "y": 2}).variables) == {"x", "y"}


class TestHistorySnapshot:
    def test_identity_ignores_values(self):
        snap1 = HistorySnapshot({"x": (make("x", 3, 100.0),)})
        snap2 = HistorySnapshot({"x": (make("x", 3, 999.0),)})
        assert snap1 == snap2
        assert hash(snap1) == hash(snap2)

    def test_identity_distinguishes_histories(self):
        # Example from §3: a1 triggered on (3x, 2x), a2 on (3x, 1x) — not
        # duplicates even though both triggered when 3x arrived.
        snap1 = HistorySnapshot({"x": (make("x", 3), make("x", 2))})
        snap2 = HistorySnapshot({"x": (make("x", 3), make("x", 1))})
        assert snap1 != snap2

    def test_seqno_accessor(self):
        snap = HistorySnapshot({"x": (make("x", 3), make("x", 1))})
        assert snap.seqno("x") == 3
        assert snap.seqnos("x") == (3, 1)

    def test_rejects_empty_history(self):
        with pytest.raises(ValueError):
            HistorySnapshot({"x": ()})

    def test_rejects_wrong_order(self):
        with pytest.raises(ValueError):
            HistorySnapshot({"x": (make("x", 1), make("x", 3))})

    def test_variables_sorted(self):
        snap = HistorySnapshot(
            {"y": (make("y", 1),), "x": (make("x", 1),)}
        )
        assert snap.variables == ("x", "y")

    def test_usable_in_sets(self):
        snap1 = HistorySnapshot({"x": (make("x", 3),)})
        snap2 = HistorySnapshot({"x": (make("x", 3),)})
        assert len({snap1, snap2}) == 1


class TestHistoryIsConsecutive:
    def test_consecutive(self):
        assert history_is_consecutive([make("x", 3), make("x", 2)])

    def test_gap(self):
        assert not history_is_consecutive([make("x", 3), make("x", 1)])

    def test_single_update_vacuous(self):
        assert history_is_consecutive([make("x", 9)])

    def test_empty_vacuous(self):
        assert history_is_consecutive([])

    def test_three_deep(self):
        assert history_is_consecutive([make("x", 5), make("x", 4), make("x", 3)])
        assert not history_is_consecutive([make("x", 5), make("x", 4), make("x", 2)])
