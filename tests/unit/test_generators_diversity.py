"""Unit tests for the diversity workload generators: bursty on/off
traffic, Zipf-skewed popularity, and correlated co-arriving updates."""

from random import Random

import pytest

from repro.workloads.generators import (
    bursty_readings,
    correlated_updates,
    zipf_counts,
    zipf_weights,
    zipfian_workload,
)
from repro.workloads.scenarios import (
    DIVERSITY_ROWS,
    MULTI_VARIABLE_SCENARIOS,
    ROW_ORDER,
    SINGLE_VARIABLE_SCENARIOS,
)


class TestSeededDeterminism:
    """Every generator is a pure function of its Random stream."""

    def test_bursty(self):
        assert bursty_readings(Random(7), 40) == bursty_readings(Random(7), 40)
        assert bursty_readings(Random(7), 40) != bursty_readings(Random(8), 40)

    def test_zipfian(self):
        kwargs = dict(n=50, variables=("x", "y", "z"))
        assert zipfian_workload(Random(3), **kwargs) == zipfian_workload(
            Random(3), **kwargs
        )

    def test_correlated(self):
        assert correlated_updates(Random(5), 30) == correlated_updates(
            Random(5), 30
        )


class TestBursty:
    def test_times_strictly_increase_after_the_first(self):
        readings = bursty_readings(Random(1), 60)
        times = [t for t, _ in readings]
        assert len(readings) == 60
        assert times[0] == 0.0
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_gaps_are_bimodal(self):
        # Every inter-reading gap is either the burst cadence or the
        # idle separation — nothing in between.
        readings = bursty_readings(
            Random(2), 200, burst_interval=2.0, idle_interval=40.0
        )
        gaps = {
            round(b - a, 3)
            for (a, _), (b, _) in zip(readings, readings[1:])
        }
        assert gaps == {2.0, 40.0}

    def test_duty_cycle_is_bounded(self):
        # Mean burst length 4 ⇒ roughly one idle per four readings; the
        # busy fraction of the span must stay well below uniform cadence.
        readings = bursty_readings(
            Random(3), 400, burst_mean=4, burst_interval=2.0, idle_interval=40.0
        )
        span = readings[-1][0] - readings[0][0]
        burst_time = sum(
            b - a
            for (a, _), (b, _) in zip(readings, readings[1:])
            if b - a < 40.0
        )
        assert 0.0 < burst_time / span < 0.5

    def test_values_straddle_the_threshold(self):
        readings = bursty_readings(Random(4), 100, threshold=3000.0)
        assert any(v > 3000.0 for _, v in readings)
        assert any(v < 3000.0 for _, v in readings)

    def test_validation(self):
        with pytest.raises(ValueError):
            bursty_readings(Random(0), -1)
        with pytest.raises(ValueError):
            bursty_readings(Random(0), 5, burst_mean=0)
        with pytest.raises(ValueError):
            bursty_readings(Random(0), 5, burst_interval=0.0)


class TestZipf:
    def test_weights_normalize_and_decrease(self):
        weights = zipf_weights(8, exponent=1.2)
        assert sum(weights) == pytest.approx(1.0)
        # Rank-frequency law: strictly monotone decreasing in rank.
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, exponent=0.0)

    def test_counts_conserve_and_skew_to_the_head(self):
        counts = zipf_counts(Random(11), 4000, 6, exponent=1.2)
        assert sum(counts) == 4000
        assert counts[0] == max(counts)
        # The head rank dominates the tail rank by a wide margin.
        assert counts[0] > 4 * counts[-1]

    def test_workload_head_variable_dominates(self):
        per_var = zipfian_workload(Random(9), 300, variables=("x", "y", "z"))
        sizes = {var: len(readings) for var, readings in per_var.items()}
        assert sum(sizes.values()) >= 300  # starved vars may add one
        assert sizes["x"] > sizes["y"] > sizes["z"]

    def test_every_variable_has_a_reading(self):
        # Extreme skew: the tail would starve without the guarantee.
        per_var = zipfian_workload(
            Random(1), 8, variables=("x", "y", "z"), exponent=6.0
        )
        assert all(per_var[var] for var in ("x", "y", "z"))


class TestCorrelated:
    def test_echoes_lag_the_primary(self):
        per_var = correlated_updates(
            Random(21), 50, variables=("x", "y"), co_arrival_prob=0.8, lag=0.5
        )
        primary_times = {t for t, _ in per_var["x"]}
        echoes = [t for t, _ in per_var["y"] if t != 0.0]
        assert echoes  # co-arrival at p=0.8 over 50 slots
        assert all(round(t - 0.5, 6) in primary_times for t in echoes)

    def test_co_arrival_probability_shapes_echo_volume(self):
        dense = correlated_updates(Random(2), 200, co_arrival_prob=0.9)
        sparse = correlated_updates(Random(2), 200, co_arrival_prob=0.1)
        assert len(dense["y"]) > len(sparse["y"])

    def test_echo_values_track_the_primary(self):
        per_var = correlated_updates(Random(13), 80, sway=90.0)
        primary = dict(per_var["x"])
        for time, value in per_var["y"]:
            if time == 0.0:
                continue
            assert abs(value - primary[round(time - 0.5, 6)]) <= 0.2 * 90.0 + 0.1

    def test_zero_co_arrival_still_defines_every_history(self):
        per_var = correlated_updates(Random(1), 20, co_arrival_prob=0.0)
        assert per_var["y"] == [(0.0, 1000.0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            correlated_updates(Random(0), 5, co_arrival_prob=1.5)
        with pytest.raises(ValueError):
            correlated_updates(Random(0), 5, variables=())


class TestScenarioWiring:
    def test_diversity_rows_exist_outside_the_tables(self):
        assert DIVERSITY_ROWS == ("bursty", "zipfian", "correlated")
        for row in DIVERSITY_ROWS:
            assert row not in ROW_ORDER  # golden tables stay untouched
        assert "bursty" in SINGLE_VARIABLE_SCENARIOS
        for row in DIVERSITY_ROWS:
            assert row in MULTI_VARIABLE_SCENARIOS

    def test_diversity_rows_simulate_on_both_kernels(self):
        from repro.engine.spec import TrialSpec

        for matrix, rows in (
            ("single", ("bursty",)),
            ("multi", DIVERSITY_ROWS),
        ):
            for row in rows:
                reports = [
                    TrialSpec(matrix, row, "AD-1", 77, 12, kernel=kernel).execute()
                    for kernel in ("object", "array")
                ]
                assert reports[0] == reports[1]