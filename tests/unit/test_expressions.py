"""Unit tests for the condition expression DSL and degree inference."""

import pytest

from repro.core.expressions import (
    Abs,
    BoolConst,
    Compare,
    Const,
    FieldRef,
    H,
    Neg,
)
from repro.core.history import HistorySet
from repro.core.update import Update


def history_with(values_by_var: dict[str, list[tuple[int, float]]], degrees=None):
    """Build a defined HistorySet from (seqno, value) lists per variable."""
    degrees = degrees or {var: len(vals) for var, vals in values_by_var.items()}
    histories = HistorySet(degrees)
    for var, vals in values_by_var.items():
        for seqno, value in vals:
            histories.push(Update(var, seqno, value))
    return histories


class TestHNamespace:
    def test_attribute_access(self):
        ref = H.x[0].value
        assert isinstance(ref, FieldRef)
        assert ref.varname == "x"
        assert ref.index == 0
        assert ref.fieldname == "value"

    def test_item_access_for_awkward_names(self):
        ref = H["stock price"][0].seqno
        assert ref.varname == "stock price"
        assert ref.fieldname == "seqno"

    def test_negative_indices(self):
        assert H.x[-2].value.index == -2

    def test_positive_index_rejected(self):
        with pytest.raises(ValueError):
            H.x[1]

    def test_private_attribute_not_a_variable(self):
        with pytest.raises(AttributeError):
            H._secret


class TestDegreeInference:
    def test_c1_is_degree_one(self):
        assert (H.x[0].value > 3000).degrees() == {"x": 1}

    def test_c2_is_degree_two(self):
        expr = H.x[0].value - H.x[-1].value > 200
        assert expr.degrees() == {"x": 2}

    def test_sparse_reference_rule(self):
        # "a condition that uses only Hx[0] and Hx[-2] is of degree 3" (§2)
        expr = (H.x[0].value > 0) & (H.x[-2].value > 0)
        assert expr.degrees() == {"x": 3}

    def test_multi_variable_degrees(self):
        expr = (H.x[0].value - H.x[-1].value > 1) & (H.y[0].value > 2)
        assert expr.degrees() == {"x": 2, "y": 1}

    def test_degrees_through_all_node_types(self):
        expr = ~((abs(-H.x[-3].value) + 1) * 2 / 3 >= H.y[0].seqno)
        assert expr.degrees() == {"x": 4, "y": 1}

    def test_constant_has_no_degrees(self):
        assert Const(5).degrees() == {}
        assert BoolConst(True).degrees() == {}


class TestEvaluation:
    def test_c1_true_false(self):
        expr = H.x[0].value > 3000
        assert expr.evaluate(history_with({"x": [(1, 3100.0)]}))
        assert not expr.evaluate(history_with({"x": [(1, 2900.0)]}))

    def test_c2_delta(self):
        expr = H.x[0].value - H.x[-1].value > 200
        histories = history_with({"x": [(1, 1000.0), (2, 1300.0)]})
        assert expr.evaluate(histories)

    def test_seqno_guard(self):
        expr = H.x[0].seqno == H.x[-1].seqno + 1
        assert expr.evaluate(history_with({"x": [(1, 0.0), (2, 0.0)]}))
        assert not expr.evaluate(history_with({"x": [(1, 0.0), (3, 0.0)]}))

    def test_arithmetic_operators(self):
        histories = history_with({"x": [(1, 10.0)]})
        assert (H.x[0].value + 5 == 15).evaluate(histories)
        assert (H.x[0].value - 4 == 6).evaluate(histories)
        assert (H.x[0].value * 2 == 20).evaluate(histories)
        assert (H.x[0].value / 4 == 2.5).evaluate(histories)

    def test_reflected_operators(self):
        histories = history_with({"x": [(1, 10.0)]})
        assert (5 + H.x[0].value == 15).evaluate(histories)
        assert (25 - H.x[0].value == 15).evaluate(histories)
        assert (3 * H.x[0].value == 30).evaluate(histories)
        assert (100 / H.x[0].value == 10).evaluate(histories)

    def test_abs_and_neg(self):
        histories = history_with({"x": [(1, 10.0)], "y": [(1, 150.0)]})
        assert isinstance(abs(H.x[0].value - H.y[0].value), Abs)
        assert (abs(H.x[0].value - H.y[0].value) == 140).evaluate(histories)
        assert isinstance(-H.x[0].value, Neg)
        assert (-H.x[0].value == -10).evaluate(histories)

    def test_comparison_operators(self):
        histories = history_with({"x": [(1, 10.0)]})
        assert (H.x[0].value >= 10).evaluate(histories)
        assert (H.x[0].value <= 10).evaluate(histories)
        assert (H.x[0].value < 11).evaluate(histories)
        assert (H.x[0].value != 9).evaluate(histories)

    def test_boolean_combinators(self):
        histories = history_with({"x": [(1, 10.0)]})
        true = H.x[0].value > 0
        false = H.x[0].value > 100
        assert (true & true).evaluate(histories)
        assert not (true & false).evaluate(histories)
        assert (true | false).evaluate(histories)
        assert not (false | false).evaluate(histories)
        assert (~false).evaluate(histories)

    def test_evaluates_on_snapshot(self):
        expr = H.x[0].value - H.x[-1].value > 200
        histories = history_with({"x": [(1, 1000.0), (2, 1300.0)]})
        assert expr.evaluate(histories.snapshot())

    def test_snapshot_too_shallow_raises(self):
        expr = H.x[-1].value > 0
        histories = history_with({"x": [(1, 1.0)]})
        with pytest.raises(LookupError):
            expr.evaluate(histories.snapshot())


class TestConstruction:
    def test_lifting_rejects_strings(self):
        with pytest.raises(TypeError):
            H.x[0].value + "oops"  # type: ignore[operator]

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            FieldRef("x", 0, "timestamp")

    def test_compare_requires_known_operator(self):
        with pytest.raises(ValueError):
            Compare("~=", Const(1), Const(2))

    def test_repr_is_readable(self):
        expr = H.x[0].value - H.x[-1].value > 200
        assert "Hx[0].value" in repr(expr)
        assert "Hx[-1].value" in repr(expr)
        assert ">" in repr(expr)
