"""Unit tests for CSV workload I/O and the condition algebra."""

import pytest

from repro.core.condition import c1, c2, c3
from repro.core.evaluator import ConditionEvaluator
from repro.core.update import Update
from repro.multicondition.algebra import ConjunctionCondition, NegationCondition
from repro.workloads.csv_io import (
    load_workload,
    save_workload,
    workload_from_csv,
    workload_to_csv,
)


class TestWorkloadCSV:
    WORKLOAD = {
        "x": [(0.0, 2900.0), (10.0, 3100.0)],
        "y": [(5.0, 1000.0)],
    }

    def test_roundtrip(self):
        restored = workload_from_csv(workload_to_csv(self.WORKLOAD))
        assert restored == self.WORKLOAD

    def test_rows_interleaved_by_time(self):
        text = workload_to_csv(self.WORKLOAD)
        lines = text.strip().splitlines()
        assert lines[0] == "time,variable,value"
        assert lines[1].startswith("0,x")
        assert lines[2].startswith("5,y")
        assert lines[3].startswith("10,x")

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "workload.csv"
        save_workload(self.WORKLOAD, str(path))
        assert load_workload(str(path)) == self.WORKLOAD

    def test_loaded_workload_runs(self, tmp_path):
        from repro.components.system import SystemConfig, run_system

        path = tmp_path / "workload.csv"
        save_workload(self.WORKLOAD, str(path))
        run = run_system(
            c1(), load_workload(str(path)), SystemConfig(front_loss=0.0), seed=1
        )
        assert [a.seqno("x") for a in run.displayed] == [2]

    def test_unsorted_rows_are_sorted_per_variable(self):
        text = "time,variable,value\n10,x,2\n0,x,1\n"
        workload = workload_from_csv(text)
        assert workload["x"] == [(0.0, 1.0), (10.0, 2.0)]

    def test_blank_lines_skipped(self):
        text = "time,variable,value\n\n0,x,1\n\n"
        assert workload_from_csv(text) == {"x": [(0.0, 1.0)]}

    def test_errors(self):
        with pytest.raises(ValueError, match="header"):
            workload_from_csv("a,b,c\n0,x,1\n")
        with pytest.raises(ValueError, match="empty CSV"):
            workload_from_csv("")
        with pytest.raises(ValueError, match="3 columns"):
            workload_from_csv("time,variable,value\n0,x\n")
        with pytest.raises(ValueError, match="non-numeric"):
            workload_from_csv("time,variable,value\n0,x,hot\n")
        with pytest.raises(ValueError, match="empty variable"):
            workload_from_csv("time,variable,value\n0,,1\n")


def feed(condition, pairs, var="x"):
    from repro.core.history import HistorySet

    histories = HistorySet(condition.degrees)
    for seqno, value in pairs:
        histories.push(Update(var, seqno, value))
    return condition.evaluate(histories)


class TestConjunction:
    def test_requires_all_constituents(self):
        both = ConjunctionCondition("both", [c1(), c2()])
        # 2900 -> 3150: c1 true (>3000), c2 true (rise 250 > 200).
        assert feed(both, [(1, 2900.0), (2, 3150.0)])
        # 2900 -> 3050: c1 true but rise only 150.
        assert not feed(both, [(1, 2900.0), (2, 3050.0)])
        # 400 -> 700: rise 300 but below 3000.
        assert not feed(both, [(1, 400.0), (2, 700.0)])

    def test_degrees_max(self):
        both = ConjunctionCondition("both", [c1(), c2()])
        assert both.degree("x") == 2

    def test_conservative_if_any_constituent_is(self):
        assert ConjunctionCondition("c", [c3(), c2()]).is_conservative
        assert not ConjunctionCondition("c", [c2()]).is_conservative

    def test_conservative_constituent_blocks_gap_trigger(self):
        both = ConjunctionCondition("both", [c3()])
        assert not feed(both, [(1, 400.0), (3, 720.0)])

    def test_requires_conditions(self):
        with pytest.raises(ValueError):
            ConjunctionCondition("c", [])


class TestNegation:
    def test_flips_satisfaction(self):
        not_hot = NegationCondition("calm", c1())
        assert feed(not_hot, [(1, 2900.0)])
        assert not feed(not_hot, [(1, 3100.0)])

    def test_preserves_degrees(self):
        assert NegationCondition("n", c2()).degree("x") == 2

    def test_negated_conservative_is_aggressive(self):
        negated = NegationCondition("n", c3())
        assert negated.is_aggressive
        # Across a gap c3 is false, so its negation triggers — the
        # aggressive behaviour the classification must reflect.
        assert feed(negated, [(1, 400.0), (3, 720.0)])

    def test_negation_of_nonhistorical_trivially_conservative(self):
        assert NegationCondition("n", c1()).is_conservative

    def test_compose_with_conjunction(self):
        # "overheating AND NOT rising": alert on sustained heat.
        condition = ConjunctionCondition(
            "sustained", [c1(), NegationCondition("flat", c2())]
        )
        ce = ConditionEvaluator(condition)
        ce.ingest(Update("x", 1, 3050.0))
        alert = ce.ingest(Update("x", 2, 3100.0))  # hot, rise only 50
        assert alert is not None
        assert ce.ingest(Update("x", 3, 3400.0)) is None  # rise 300
