"""Unit tests for the sharding subsystem: ring, router, handoff, runtime.

The property and integration suites own the statistical invariants and
the cross-runtime conformance matrix; this file pins the concrete
contracts — config validation and clamping, deterministic placement,
split bookkeeping, the handoff's JSON round trip and stale guard, and
the conformance report's divergence locator (which must name the first
diverging alert, not just digests).
"""

import pytest

from repro.core.condition import c1, cm
from repro.core.update import Update
from repro.engine.spec import TrialSpec
from repro.service.feed import record_feed
from repro.service.runtime import ConformanceReport, DirectRuntime
from repro.sharding import (
    SHARD_FIELD_KINDS,
    HashRing,
    ShardConfig,
    ShardedRuntime,
    ShardHost,
    ShardState,
    assign_condition,
    moved_keys,
    shard_field_default,
    split_feed,
)


class TestShardConfig:
    def test_defaults_are_the_degenerate_ring(self):
        config = ShardConfig()
        assert config.shards == 1
        assert config.is_single

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"shards": -2},
            {"virtual_nodes": 0},
            {"ring_seed": -1},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            ShardConfig(**kwargs)

    def test_with_value_clamps_by_kind(self):
        config = ShardConfig(shards=4)
        assert config.with_value("shards", -3).shards == 1
        assert config.with_value("virtual_nodes", 0.9).virtual_nodes == 1
        assert config.with_value("ring_seed", -7).ring_seed == 0
        assert config.with_value("shards", 8).shards == 8

    def test_resized_keeps_ring_shape(self):
        config = ShardConfig(shards=2, virtual_nodes=16, ring_seed=3)
        resized = config.resized(5)
        assert resized.shards == 5
        assert resized.virtual_nodes == 16
        assert resized.ring_seed == 3

    def test_field_metadata_covers_every_knob(self):
        assert set(SHARD_FIELD_KINDS) == {
            "shards", "virtual_nodes", "ring_seed",
        }
        for name in SHARD_FIELD_KINDS:
            default = shard_field_default(name)
            assert getattr(ShardConfig(), name) == default

    def test_spec_round_trips_sharding_as_dict(self):
        # Trace/feed headers reconstruct specs from plain JSON dicts.
        spec = TrialSpec(
            "single", "aggressive", "AD-2", 0, 10,
            sharding={"shards": 4, "virtual_nodes": 32, "ring_seed": 1},
        )
        assert spec.sharding == ShardConfig(
            shards=4, virtual_nodes=32, ring_seed=1
        )


class TestHashRing:
    def test_single_shard_owns_everything(self):
        ring = HashRing(ShardConfig())
        assert ring.shard_for("x") == 0
        assert ring.loads(["a", "b", "c"]) == [3]

    def test_assignment_is_stable_across_builds(self):
        config = ShardConfig(shards=5, virtual_nodes=32, ring_seed=2)
        population = [f"v{i}" for i in range(100)]
        assert HashRing(config).assignment(population) == HashRing(
            config
        ).assignment(population)

    def test_reseeding_redices_ownership(self):
        population = [f"v{i}" for i in range(200)]
        a = HashRing(ShardConfig(shards=4)).assignment(population)
        b = HashRing(ShardConfig(shards=4, ring_seed=1)).assignment(population)
        assert a != b  # 200 keys all landing identically is ~impossible

    def test_moved_keys_reports_ownership_changes_only(self):
        before = {"a": 0, "b": 1, "c": 1}
        after = {"a": 0, "b": 2, "c": 1}
        assert moved_keys(before, after) == {"b": (1, 2)}


class TestRouter:
    def test_primary_is_lexicographically_smallest_variable(self):
        assignment = assign_condition(cm(), ShardConfig(shards=6))
        assert assignment.primary == "x"
        assert set(assignment.variable_owner) == {"x", "y"}

    def test_multi_variable_routes_pull_to_home(self):
        assignment = assign_condition(cm(), ShardConfig(shards=6))
        for var in ("x", "y"):
            assert assignment.route(var) == (assignment.home,)
        assert assignment.route("unreferenced") == ()

    def test_home_is_ring_owner_of_primary(self):
        config = ShardConfig(shards=7, ring_seed=3)
        assignment = assign_condition(c1(), config)
        assert assignment.home == HashRing(config).shard_for("x")

    def test_summary_is_plain_scalars(self):
        import json

        summary = assign_condition(cm(), ShardConfig(shards=3)).summary()
        assert json.loads(json.dumps(summary)) == summary

    def test_split_feed_bookkeeping(self):
        feed = record_feed(TrialSpec("single", "aggressive", "AD-2", 3, 12))
        assignment, sub_feeds, dropped = split_feed(feed, ShardConfig(shards=4))
        assert dropped == 0
        assert set(sub_feeds) == {assignment.home}
        home = sub_feeds[assignment.home]
        assert home.deliveries == feed.deliveries
        assert home.stamps == feed.stamps


def _threshold_updates(seqnos):
    # c1 defaults to "x > 3000": odd seqnos trigger, even seqnos do not.
    return [
        Update("x", seqno, 3600.0 if seqno % 2 else 100.0)
        for seqno in seqnos
    ]


class TestHandoff:
    def make_host(self):
        host = ShardHost(shard=1, condition=c1(), replication=2)
        for update in _threshold_updates([1, 2, 3]):
            host.ingest(0, update)
        for update in _threshold_updates([1, 3]):
            host.ingest(1, update)
        return host

    def test_export_state_json_round_trip(self):
        state = self.make_host().export_state()
        restored = ShardState.from_json_obj(state.to_json_obj())
        assert restored == state
        assert restored.emitted == (2, 2)
        assert restored.high_water == ({"x": 3}, {"x": 3})

    def test_restore_replays_to_identical_alerts(self):
        host = self.make_host()
        state = ShardState.from_json_obj(host.export_state().to_json_obj())
        restored = ShardHost.restore(5, c1(), state)
        assert restored.shard == 5
        assert restored.per_ce_alerts() == host.per_ce_alerts()
        assert restored.received() == host.received()

    def test_restore_rejects_tampered_state(self):
        state = self.make_host().export_state()
        tampered = ShardState(
            shard=state.shard,
            logs=state.logs,
            high_water=state.high_water,
            emitted=(5, 5),  # claims alerts the log cannot regenerate
        )
        with pytest.raises(ValueError, match="does not reproduce"):
            ShardHost.restore(2, c1(), tampered)

    def test_stale_guard_drops_reforwarded_duplicates(self):
        host = self.make_host()
        state = ShardState.from_json_obj(host.export_state().to_json_obj())
        restored = ShardHost.restore(2, c1(), state)
        # An in-flight delivery re-forwarded after the handoff: already
        # covered by the high-water vector, must not double-ingest.
        assert restored.ingest(0, _threshold_updates([3])[0]) is None
        assert restored.stale_dropped == [1, 0]
        assert restored.per_ce_alerts() == host.per_ce_alerts()
        # Genuinely new deliveries still evaluate.
        alert = restored.ingest(0, _threshold_updates([5])[0])
        assert alert is not None

    def test_guard_ignores_unreferenced_variables(self):
        host = ShardHost(shard=0, condition=c1(), replication=1)
        host.ingest(0, Update("other", 1, 9999.0))
        assert host.export_state().high_water == ({},)


class TestShardedRuntimeBookkeeping:
    def test_counters_account_for_every_delivery(self):
        feed = record_feed(TrialSpec("multi", "aggressive", "AD-5", 2, 10))
        result = ShardedRuntime(ShardConfig(shards=5)).execute(feed)
        routed = sum(
            count
            for key, count in result.counters.items()
            if key.startswith("shard/route/")
        )
        assert routed + result.counters.get("shard/drop/router", 0) == len(
            feed.deliveries
        )

    def test_runtime_name_exposes_layout(self):
        runtime = ShardedRuntime(ShardConfig(shards=3))
        assert runtime.name == "sharded[3]:direct"


class TestConformanceDivergence:
    def make_results(self, *specs):
        return [
            DirectRuntime().execute(record_feed(spec)) for spec in specs
        ]

    def test_conformant_report_has_no_divergence(self):
        spec = TrialSpec("single", "aggressive", "AD-2", 3, 12)
        a, b = self.make_results(spec, spec)
        report = ConformanceReport(results=(a, b))
        assert report.identical
        assert report.first_divergence() is None
        assert "conformant" in report.explain()

    def test_divergence_names_first_alert_and_source(self):
        from dataclasses import replace

        spec = TrialSpec("single", "aggressive", "AD-2", 3, 12)
        (a,) = self.make_results(spec)
        assert a.displayed  # the seed was chosen to display alerts
        b = replace(a, runtime="other", displayed=a.displayed[1:])
        report = ConformanceReport(results=(a, b))
        assert not report.identical
        divergence = report.first_divergence()
        assert divergence["runtime"] == "other"
        assert divergence["reference"] == "direct"
        # The streams share no offset, so they part ways at alert 0 —
        # and the message must say so rather than only hashing.
        assert divergence["alert_index"] == 0
        assert divergence["source"] == a.displayed[0].source
        explained = report.explain()
        assert "alert index 0" in explained
        assert divergence["source"] in explained
        assert report.summary()["divergence"] == divergence

    def test_verdict_only_divergence_is_reported(self):
        from dataclasses import replace

        spec = TrialSpec("single", "aggressive", "AD-2", 3, 12)
        (a,) = self.make_results(spec)
        b = replace(
            a, runtime="other", verdicts={**a.verdicts, "ordered": False}
        )
        report = ConformanceReport(results=(a, b))
        assert not report.identical
        divergence = report.first_divergence()
        assert divergence["alert_index"] is None
        assert "verdicts differ" in report.explain()
