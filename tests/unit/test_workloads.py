"""Unit tests for workload generators, scenarios, and canned traces."""

import random

import pytest

from repro.core.sequences import is_subsequence
from repro.simulation.rng import RandomStreams
from repro.workloads.generators import (
    evenly_spaced,
    paired_reactors,
    reactor_temperatures,
    rising_runs,
    stock_quotes,
    threshold_crossers,
)
from repro.workloads.scenarios import (
    DIVERSITY_ROWS,
    MULTI_VARIABLE_SCENARIOS,
    ROW_ORDER,
    SINGLE_VARIABLE_SCENARIOS,
    cm_historical,
    run_scenario,
)
from repro.workloads.traces import (
    example_1,
    example_2,
    interleave,
    theorem_4_example,
)


class TestGenerators:
    def test_evenly_spaced(self):
        readings = evenly_spaced([1.0, 2.0], interval=5.0, start=1.0)
        assert readings == [(1.0, 1.0), (6.0, 2.0)]

    def test_evenly_spaced_validates_interval(self):
        with pytest.raises(ValueError):
            evenly_spaced([1.0], interval=0.0)

    def test_reactor_temperatures_bounds(self):
        readings = reactor_temperatures(random.Random(0), 200)
        values = [v for _, v in readings]
        assert all(2300.0 <= v <= 3700.0 for v in values)

    def test_reactor_temperatures_crosses_threshold(self):
        values = [v for _, v in reactor_temperatures(random.Random(1), 300)]
        assert any(v > 3000 for v in values)
        assert any(v < 3000 for v in values)

    def test_reactor_rejects_negative_n(self):
        with pytest.raises(ValueError):
            reactor_temperatures(random.Random(0), -1)

    def test_threshold_crossers_both_sides(self):
        values = [v for _, v in threshold_crossers(random.Random(2), 100)]
        assert any(v > 3000 for v in values)
        assert any(v < 3000 for v in values)

    def test_rising_runs_produce_big_jumps(self):
        values = [v for _, v in rising_runs(random.Random(3), 200)]
        deltas = [b - a for a, b in zip(values, values[1:])]
        assert any(d > 200 for d in deltas)

    def test_stock_quotes_positive_and_crashing(self):
        values = [v for _, v in stock_quotes(random.Random(4), 300)]
        assert all(v >= 1.0 for v in values)
        drops = [b / a for a, b in zip(values, values[1:])]
        assert any(r < 0.8 for r in drops)  # >20% drop happens

    def test_paired_reactors_diverge(self):
        xs = [v for _, v in paired_reactors(random.Random(5), 200, phase=0.0)]
        ys = [v for _, v in paired_reactors(random.Random(6), 200, phase=40.0)]
        gaps = [abs(a - b) for a, b in zip(xs, ys)]
        assert any(g > 100 for g in gaps)

    def test_generators_deterministic(self):
        a = rising_runs(random.Random(7), 50)
        b = rising_runs(random.Random(7), 50)
        assert a == b

    def test_timestamps_increase(self):
        for gen in (reactor_temperatures, threshold_crossers, rising_runs,
                    stock_quotes, paired_reactors):
            readings = gen(random.Random(8), 20)
            times = [t for t, _ in readings]
            assert times == sorted(times)


class TestScenarios:
    def test_row_order_matches_tables(self):
        assert ROW_ORDER == (
            "lossless",
            "non-historical",
            "conservative",
            "aggressive",
        )

    def test_all_rows_defined(self):
        # The golden tables iterate ROW_ORDER; the diversity rows ride
        # alongside ("bursty" in both matrices, the rest multi-only).
        assert set(SINGLE_VARIABLE_SCENARIOS) == set(ROW_ORDER) | {"bursty"}
        assert set(MULTI_VARIABLE_SCENARIOS) == set(ROW_ORDER) | set(DIVERSITY_ROWS)

    def test_lossless_rows_have_zero_loss(self):
        assert SINGLE_VARIABLE_SCENARIOS["lossless"].front_loss == 0.0
        assert MULTI_VARIABLE_SCENARIOS["lossless"].front_loss == 0.0

    def test_condition_shapes(self):
        assert not SINGLE_VARIABLE_SCENARIOS["non-historical"].make_condition().is_historical
        assert SINGLE_VARIABLE_SCENARIOS["conservative"].make_condition().is_conservative
        assert SINGLE_VARIABLE_SCENARIOS["aggressive"].make_condition().is_aggressive

    def test_cm_historical_variants(self):
        cons = cm_historical(conservative=True)
        aggr = cm_historical(conservative=False)
        assert cons.is_conservative and cons.is_historical
        assert aggr.is_aggressive and aggr.is_historical
        assert cons.degree("x") == 2 and cons.degree("y") == 1

    def test_workloads_cover_condition_variables(self):
        for scenarios in (SINGLE_VARIABLE_SCENARIOS, MULTI_VARIABLE_SCENARIOS):
            for scenario in scenarios.values():
                condition = scenario.make_condition()
                workload = scenario.make_workload(RandomStreams(0), 5)
                assert set(condition.variables) <= set(workload)

    def test_run_scenario_deterministic(self):
        scenario = SINGLE_VARIABLE_SCENARIOS["aggressive"]
        r1 = run_scenario(scenario, "AD-1", seed=11, n_updates=15)
        r2 = run_scenario(scenario, "AD-1", seed=11, n_updates=15)
        assert r1.displayed == r2.displayed

    def test_run_scenario_lossy_actually_loses(self):
        scenario = SINGLE_VARIABLE_SCENARIOS["non-historical"]
        run = run_scenario(scenario, "AD-1", seed=1, n_updates=40)
        assert any(len(t) < 40 for t in run.received)


class TestInterleave:
    def test_basic(self):
        ex = example_2()
        a1, a2 = ex.alert_streams
        merged = interleave([a1, a2], [1, 0])
        assert merged[0] == a2[0]
        assert merged[1] == a1[0]

    def test_rejects_exhausted_stream(self):
        ex = example_2()
        with pytest.raises(ValueError):
            interleave(ex.alert_streams, [0, 0])

    def test_rejects_unconsumed_stream(self):
        ex = example_2()
        with pytest.raises(ValueError):
            interleave(ex.alert_streams, [0])


class TestCannedTraces:
    def test_example_1_streams(self):
        ex = example_1()
        assert [a.seqno("x") for a in ex.alert_streams[0]] == [2, 3]
        assert [a.seqno("x") for a in ex.alert_streams[1]] == [3]

    def test_traces_are_subsequences(self):
        ex = example_1()
        assert is_subsequence(list(ex.traces[1]), list(ex.traces[0]))

    def test_theorem_4_alert_histories(self):
        ex = theorem_4_example()
        (a1,) = ex.alert_streams[0]
        (a2,) = ex.alert_streams[1]
        assert a1.histories.seqnos("x") == (2, 1)
        assert a2.histories.seqnos("x") == (3, 1)
