"""Unit tests for the service runtime: feeds, queues, drain, throttling."""

from __future__ import annotations

import asyncio
import dataclasses

import pytest

from repro.core.update import Update
from repro.core.wire import iter_frames
from repro.engine.spec import TrialSpec
from repro.service import (
    CLOSE,
    AsyncioServiceRuntime,
    BoundedQueue,
    DirectRuntime,
    FeedMismatchError,
    KernelRuntime,
    MonitorService,
    ServiceConfig,
    check_conformance,
    feed_messages,
    loads_feed,
    record_feed,
)
from repro.service.feed import FeedSchemaError, decode_message, encode_message
from repro.service.server import execute_feed

SPEC = TrialSpec(
    matrix="single", row="aggressive", algorithm="AD-3", seed=7, n_updates=25
)


@pytest.fixture(scope="module")
def feed():
    return record_feed(SPEC)


# -- feed artifact ------------------------------------------------------------

class TestFeed:
    def test_jsonl_round_trip(self, feed):
        assert loads_feed(feed.to_jsonl()) == feed

    def test_round_trip_is_fixpoint(self, feed):
        assert loads_feed(feed.to_jsonl()).to_jsonl() == feed.to_jsonl()

    def test_per_ce_regroups_deliveries(self, feed):
        streams = feed.per_ce()
        assert len(streams) == feed.replication
        assert sum(len(s) for s in streams) == len(feed.deliveries)
        # Round-robin interleave preserves each CE's delivery order.
        for ce_index, stream in enumerate(streams):
            assert [
                u for ce, u in feed.deliveries if ce == ce_index
            ] == list(stream)

    def test_schema_version_enforced(self, feed):
        tampered = feed.to_jsonl().replace("repro.feed/1", "repro.feed/9")
        with pytest.raises(FeedSchemaError, match="unsupported feed schema"):
            loads_feed(tampered)

    def test_empty_rejected(self):
        with pytest.raises(FeedSchemaError, match="empty"):
            loads_feed("")

    def test_stamps_count_alerts(self, feed):
        assert feed.total_alerts == sum(len(s) for s in feed.stamps)
        assert feed.total_alerts > 0

    def test_message_frame_round_trip(self, feed):
        stream = b"".join(encode_message(m) for m in feed_messages(feed))
        messages = [decode_message(p) for p in iter_frames(stream)]
        assert messages[0]["type"] == "hello"
        assert messages[-1]["type"] == "end"
        assert len(messages) == len(feed.deliveries) + 2

    def test_recording_is_deterministic(self, feed):
        assert record_feed(SPEC) == feed


# -- offline runtimes ---------------------------------------------------------

class TestOfflineRuntimes:
    def test_direct_matches_both_kernels(self, feed):
        report = check_conformance(
            feed, [KernelRuntime("object"), KernelRuntime("array"), DirectRuntime()]
        )
        assert report.identical

    def test_kernel_runtime_rejects_tampered_deliveries(self, feed):
        # Update equality is (varname, seqno) — the stream point's
        # identity — so the tamper must move the seqno to be observable.
        first_ce, first_update = feed.deliveries[0]
        tampered = dataclasses.replace(
            feed,
            deliveries=(
                (first_ce, Update(first_update.varname,
                                  first_update.seqno + 1000,
                                  first_update.value)),
                *feed.deliveries[1:],
            ),
        )
        with pytest.raises(FeedMismatchError, match="different"):
            KernelRuntime("array").execute(tampered)

    def test_direct_runtime_rejects_tampered_stamps(self, feed):
        # Dropping one stamp desynchronizes alerts from stamps.
        tampered = dataclasses.replace(
            feed, stamps=(feed.stamps[0][:-1], *feed.stamps[1:])
        )
        with pytest.raises(FeedMismatchError):
            DirectRuntime().execute(tampered)

    def test_displayed_bytes_are_framed_canonical_lines(self, feed):
        result = DirectRuntime().execute(feed)
        payloads = list(iter_frames(result.displayed_bytes()))
        assert len(payloads) == len(result.displayed)
        import json

        first = json.loads(payloads[0])
        assert set(first) == {"condname", "source", "histories"}


# -- asyncio service ----------------------------------------------------------

class TestAsyncioService:
    def test_service_matches_direct(self, feed):
        service = AsyncioServiceRuntime().execute(feed)
        direct = DirectRuntime().execute(feed)
        assert service.displayed_bytes() == direct.displayed_bytes()
        assert service.verdicts == direct.verdicts

    def test_graceful_drain_flushes_all_inflight_alerts(self, feed):
        # Tiny queues + an artificially slow CE: at the moment the client's
        # end message arrives, alerts are still queued at every stage.  The
        # drain must flush them all — the displayed count equals the
        # reference run's, nothing is cut off at shutdown.
        async def slow(ce_index, update):
            await asyncio.sleep(0.002)

        runtime = AsyncioServiceRuntime(
            ServiceConfig(queue_capacity=2), pace=slow
        )
        result = runtime.execute(feed)
        reference = DirectRuntime().execute(feed)
        assert len(result.displayed) == len(reference.displayed)
        assert result.displayed_bytes() == reference.displayed_bytes()

    def test_slow_consumer_activates_throttling(self, feed):
        # With capacity 4 and ~50 deliveries racing a paced CE, the ingest
        # or per-CE queues must hit their high-water mark and report it.
        async def slow(ce_index, update):
            await asyncio.sleep(0.001)

        runtime = AsyncioServiceRuntime(
            ServiceConfig(queue_capacity=4), pace=slow
        )
        result = runtime.execute(feed)
        throttles = {
            key: count
            for key, count in result.counters.items()
            if key.startswith("service/throttle-on/")
        }
        assert throttles, f"no throttling observed in {sorted(result.counters)}"
        blocked = sum(
            count
            for key, count in result.counters.items()
            if key.startswith("service/blocked-put/")
        )
        assert blocked > 0

    def test_unthrottled_run_reports_no_backpressure(self, feed):
        result = AsyncioServiceRuntime(
            ServiceConfig(queue_capacity=4096)
        ).execute(feed)
        assert not any(
            key.startswith("service/throttle-on/") for key in result.counters
        )

    def test_latency_percentiles_reported(self, feed):
        result = AsyncioServiceRuntime().execute(feed)
        assert set(result.latency_ms) == {"p50", "p99", "max"}
        assert 0 < result.latency_ms["p50"] <= result.latency_ms["p99"]
        assert result.latency_ms["p99"] <= result.latency_ms["max"]

    def test_counters_cover_every_stage(self, feed):
        result = AsyncioServiceRuntime().execute(feed)
        gets = {
            key.rsplit("/", 1)[1]
            for key in result.counters
            if key.startswith("service/get/")
        }
        assert {"ingest", "alerts"} <= gets
        assert any(name.startswith("ce") for name in gets)
        assert result.counters["service/get/ingest"] == len(feed.deliveries)
        assert result.counters["service/get/alerts"] == feed.total_alerts

    def test_server_aggregates_counters_across_connections(self, feed):
        async def run():
            service = MonitorService(ServiceConfig())
            await service.start()
            try:
                for _ in range(2):
                    await execute_feed(feed, service.host, service.port)
            finally:
                await service.stop()
            return service

        service = asyncio.run(run())
        assert service.connections_handled == 2
        assert (
            service.counters.node_total("service", "get", "ingest")
            == 2 * len(feed.deliveries)
        )

    def test_tampered_stream_reported_as_error(self, feed):
        from repro.service import ServiceError

        bad = dataclasses.replace(
            feed, stamps=(feed.stamps[0][:-1], *feed.stamps[1:])
        )
        with pytest.raises(ServiceError, match="FeedMismatchError"):
            AsyncioServiceRuntime().execute(bad)


# -- bounded queue ------------------------------------------------------------

class TestBoundedQueue:
    def run(self, coroutine):
        return asyncio.run(coroutine)

    def test_put_get_fifo(self):
        async def scenario():
            queue = BoundedQueue("q", 8)
            for i in range(5):
                await queue.put(i)
            return [await queue.get() for _ in range(5)]

        assert self.run(scenario()) == [0, 1, 2, 3, 4]

    def test_put_blocks_at_capacity(self):
        async def scenario():
            queue = BoundedQueue("q", 2)
            await queue.put(1)
            await queue.put(2)
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(queue.put(3), timeout=0.05)
            return queue.stats.blocked_puts

        assert self.run(scenario()) == 1

    def test_throttle_episode_with_hysteresis(self):
        async def scenario():
            queue = BoundedQueue("q", 4, high_water=4)
            for i in range(4):
                await queue.put(i)
            assert queue.throttled
            await queue.get()  # 3 left — still above low-water (2)
            assert queue.throttled
            await queue.get()  # 2 left — at low-water, clears
            assert not queue.throttled
            for _ in range(2):
                await queue.get()
            await queue.put("again")
            return queue.stats.throttle_episodes

        # Dipping below low-water then refilling opens a second episode
        # only when high-water is crossed again — one put of one item
        # does not re-trigger.
        assert self.run(scenario()) == 1

    def test_close_sentinel_not_counted(self):
        async def scenario():
            queue = BoundedQueue("q", 4)
            await queue.put("item")
            await queue.close()
            first = await queue.get()
            second = await queue.get()
            return first, second, queue.stats

        first, second, stats = self.run(scenario())
        assert first == "item"
        assert second is CLOSE
        assert (stats.puts, stats.gets) == (1, 1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedQueue("q", 0)
        with pytest.raises(ValueError):
            BoundedQueue("q", 4, high_water=5)

    def test_stats_counters_elide_zeros(self):
        stats = BoundedQueue("q", 4).stats
        assert stats.as_counters("q") == {}
