"""Unit tests for RNG streams and crash schedules."""

import random

import pytest

from repro.simulation.failures import CrashSchedule, random_crash_schedule
from repro.simulation.rng import RandomStreams


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        a = RandomStreams(7).stream("link").random()
        b = RandomStreams(7).stream("link").random()
        assert a == b

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        assert streams.stream("a").random() != streams.stream("b").random()

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b

    def test_consuming_one_stream_does_not_shift_another(self):
        streams1 = RandomStreams(5)
        streams1.stream("noisy").random()
        value_after = streams1.stream("quiet").random()
        streams2 = RandomStreams(5)
        value_direct = streams2.stream("quiet").random()
        assert value_after == value_direct

    def test_spawn_changes_streams(self):
        parent = RandomStreams(5)
        child = parent.spawn("trial-1")
        assert child.stream("x").random() != parent.stream("x").random()

    def test_spawn_reproducible(self):
        a = RandomStreams(5).spawn("t").stream("x").random()
        b = RandomStreams(5).spawn("t").stream("x").random()
        assert a == b


class TestCrashSchedule:
    def test_never(self):
        schedule = CrashSchedule.never()
        assert schedule.is_up(0.0)
        assert schedule.is_up(1e9)
        assert schedule.total_downtime == 0.0

    def test_window_boundaries_inclusive(self):
        schedule = CrashSchedule(((10.0, 20.0),))
        assert schedule.is_up(9.999)
        assert not schedule.is_up(10.0)
        assert not schedule.is_up(15.0)
        assert not schedule.is_up(20.0)
        assert schedule.is_up(20.001)

    def test_multiple_windows(self):
        schedule = CrashSchedule(((1.0, 2.0), (5.0, 6.0)))
        assert not schedule.is_up(1.5)
        assert schedule.is_up(3.0)
        assert not schedule.is_up(5.5)

    def test_total_downtime(self):
        schedule = CrashSchedule(((1.0, 2.0), (5.0, 8.0)))
        assert schedule.total_downtime == 4.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule(((5.0, 1.0),))

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule(((1.0, 5.0), (3.0, 6.0)))

    def test_from_windows_sorts(self):
        schedule = CrashSchedule.from_windows([(5.0, 6.0), (1.0, 2.0)])
        assert schedule.windows == ((1.0, 2.0), (5.0, 6.0))


class TestNextUpTime:
    def test_up_now_returns_query_time(self):
        schedule = CrashSchedule(((10.0, 20.0),))
        assert schedule.next_up_time(5.0) == 5.0
        assert schedule.next_up_time(25.0) == 25.0

    def test_never_crashed_is_identity(self):
        assert CrashSchedule.never().next_up_time(123.4) == 123.4

    def test_window_starting_exactly_at_query_time(self):
        # Windows are closed: a window that *starts* at the query instant
        # already holds the node down.
        schedule = CrashSchedule(((10.0, 20.0),))
        assert schedule.next_up_time(10.0) == pytest.approx(20.0 + 1e-6)

    def test_window_ending_exactly_at_query_time(self):
        # ... and one that *ends* there still does (closed on both sides).
        schedule = CrashSchedule(((10.0, 20.0),))
        assert schedule.next_up_time(20.0) == pytest.approx(20.0 + 1e-6)

    def test_chains_across_adjacent_windows(self):
        # Recovery at end + epsilon lands inside the next window when the
        # windows are closer than epsilon apart: recovery chains through.
        schedule = CrashSchedule(((10.0, 20.0), (20.0 + 1e-7, 30.0)))
        assert schedule.next_up_time(15.0) == pytest.approx(30.0 + 1e-6)

    def test_gap_wider_than_epsilon_does_not_chain(self):
        schedule = CrashSchedule(((10.0, 20.0), (21.0, 30.0)))
        assert schedule.next_up_time(15.0) == pytest.approx(20.0 + 1e-6)

    def test_zero_width_window(self):
        # mean_repair=0 produces (t, t) windows; the node is down for the
        # single instant t and back up epsilon later.
        schedule = CrashSchedule(((10.0, 10.0),))
        assert schedule.next_up_time(10.0) == pytest.approx(10.0 + 1e-6)
        assert schedule.next_up_time(9.999) == 9.999

    def test_zero_width_windows_from_zero_mean_repair(self):
        schedule = random_crash_schedule(random.Random(2), 200.0, 0.05, 0.0)
        assert schedule.windows  # the rate guarantees some crashes
        assert all(start == end for start, end in schedule.windows)
        for start, _ in schedule.windows:
            assert schedule.next_up_time(start) == pytest.approx(start + 1e-6)

    def test_epsilon_recovery_is_deterministic(self):
        schedule = CrashSchedule(((10.0, 20.0), (40.0, 50.0)))
        times = [schedule.next_up_time(t) for t in (10.0, 15.0, 20.0)]
        assert times == [schedule.next_up_time(t) for t in (10.0, 15.0, 20.0)]
        assert len(set(times)) == 1

    def test_custom_epsilon(self):
        schedule = CrashSchedule(((10.0, 20.0),))
        assert schedule.next_up_time(15.0, epsilon=0.5) == 20.5


class TestCrashScheduleUnion:
    def test_disjoint_windows_concatenate(self):
        a = CrashSchedule(((1.0, 2.0),))
        b = CrashSchedule(((5.0, 6.0),))
        assert a.union(b).windows == ((1.0, 2.0), (5.0, 6.0))

    def test_overlapping_windows_coalesce(self):
        a = CrashSchedule(((1.0, 4.0),))
        b = CrashSchedule(((3.0, 6.0), (10.0, 11.0)))
        assert a.union(b).windows == ((1.0, 6.0), (10.0, 11.0))

    def test_touching_windows_coalesce(self):
        a = CrashSchedule(((1.0, 2.0),))
        b = CrashSchedule(((2.0, 3.0),))
        assert a.union(b).windows == ((1.0, 3.0),)

    def test_union_with_never_is_identity(self):
        a = CrashSchedule(((1.0, 2.0),))
        assert a.union(CrashSchedule.never()) == a
        assert CrashSchedule.never().union(a) == a

    def test_commutative(self):
        a = CrashSchedule(((1.0, 3.0), (8.0, 9.0)))
        b = CrashSchedule(((2.0, 5.0),))
        assert a.union(b) == b.union(a)


class TestRandomCrashSchedule:
    def test_zero_rate_never_crashes(self):
        schedule = random_crash_schedule(random.Random(0), 1000.0, 0.0, 10.0)
        assert schedule.windows == ()

    def test_windows_within_horizon(self):
        schedule = random_crash_schedule(random.Random(1), 100.0, 0.1, 5.0)
        for start, end in schedule.windows:
            assert 0.0 <= start <= end <= 100.0

    def test_reproducible(self):
        a = random_crash_schedule(random.Random(9), 500.0, 0.05, 20.0)
        b = random_crash_schedule(random.Random(9), 500.0, 0.05, 20.0)
        assert a == b

    def test_higher_rate_more_downtime(self):
        low = random_crash_schedule(random.Random(3), 10_000.0, 0.001, 10.0)
        high = random_crash_schedule(random.Random(3), 10_000.0, 0.05, 10.0)
        assert high.total_downtime > low.total_downtime

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            random_crash_schedule(random.Random(0), 10.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            random_crash_schedule(random.Random(0), 10.0, 1.0, -1.0)
