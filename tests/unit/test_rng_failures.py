"""Unit tests for RNG streams and crash schedules."""

import random

import pytest

from repro.simulation.failures import CrashSchedule, random_crash_schedule
from repro.simulation.rng import RandomStreams


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        a = RandomStreams(7).stream("link").random()
        b = RandomStreams(7).stream("link").random()
        assert a == b

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        assert streams.stream("a").random() != streams.stream("b").random()

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b

    def test_consuming_one_stream_does_not_shift_another(self):
        streams1 = RandomStreams(5)
        streams1.stream("noisy").random()
        value_after = streams1.stream("quiet").random()
        streams2 = RandomStreams(5)
        value_direct = streams2.stream("quiet").random()
        assert value_after == value_direct

    def test_spawn_changes_streams(self):
        parent = RandomStreams(5)
        child = parent.spawn("trial-1")
        assert child.stream("x").random() != parent.stream("x").random()

    def test_spawn_reproducible(self):
        a = RandomStreams(5).spawn("t").stream("x").random()
        b = RandomStreams(5).spawn("t").stream("x").random()
        assert a == b


class TestCrashSchedule:
    def test_never(self):
        schedule = CrashSchedule.never()
        assert schedule.is_up(0.0)
        assert schedule.is_up(1e9)
        assert schedule.total_downtime == 0.0

    def test_window_boundaries_inclusive(self):
        schedule = CrashSchedule(((10.0, 20.0),))
        assert schedule.is_up(9.999)
        assert not schedule.is_up(10.0)
        assert not schedule.is_up(15.0)
        assert not schedule.is_up(20.0)
        assert schedule.is_up(20.001)

    def test_multiple_windows(self):
        schedule = CrashSchedule(((1.0, 2.0), (5.0, 6.0)))
        assert not schedule.is_up(1.5)
        assert schedule.is_up(3.0)
        assert not schedule.is_up(5.5)

    def test_total_downtime(self):
        schedule = CrashSchedule(((1.0, 2.0), (5.0, 8.0)))
        assert schedule.total_downtime == 4.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule(((5.0, 1.0),))

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule(((1.0, 5.0), (3.0, 6.0)))

    def test_from_windows_sorts(self):
        schedule = CrashSchedule.from_windows([(5.0, 6.0), (1.0, 2.0)])
        assert schedule.windows == ((1.0, 2.0), (5.0, 6.0))


class TestRandomCrashSchedule:
    def test_zero_rate_never_crashes(self):
        schedule = random_crash_schedule(random.Random(0), 1000.0, 0.0, 10.0)
        assert schedule.windows == ()

    def test_windows_within_horizon(self):
        schedule = random_crash_schedule(random.Random(1), 100.0, 0.1, 5.0)
        for start, end in schedule.windows:
            assert 0.0 <= start <= end <= 100.0

    def test_reproducible(self):
        a = random_crash_schedule(random.Random(9), 500.0, 0.05, 20.0)
        b = random_crash_schedule(random.Random(9), 500.0, 0.05, 20.0)
        assert a == b

    def test_higher_rate_more_downtime(self):
        low = random_crash_schedule(random.Random(3), 10_000.0, 0.001, 10.0)
        high = random_crash_schedule(random.Random(3), 10_000.0, 0.05, 10.0)
        assert high.total_downtime > low.total_downtime

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            random_crash_schedule(random.Random(0), 10.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            random_crash_schedule(random.Random(0), 10.0, 1.0, -1.0)
