"""Unit tests for the completeness checkers."""

import pytest

from repro.core.condition import c1, c3, cm
from repro.core.evaluator import ConditionEvaluator
from repro.core.reference import combine_received, merge_single_variable
from repro.core.update import parse_trace
from repro.props.completeness import (
    check_completeness,
    check_completeness_multi,
    check_completeness_multi_enumerated,
    check_completeness_single,
)
from repro.workloads.traces import lemma_6_example


class TestSingleVariable:
    def test_complete_when_all_alerts_present(self):
        condition = c1()
        u1 = parse_trace("1x(2900), 2x(3100), 3x(3200)")
        u2 = parse_trace("1x(2900), 3x(3200)")
        merged = merge_single_variable(u1, u2)
        # AD-1 union of A1 and A2 (deduplicated) = alerts at 2 and 3.
        a1 = ConditionEvaluator(condition).ingest_all(u1)
        displayed = a1  # a2's single alert is a duplicate of a1's second
        assert check_completeness_single(displayed, condition, merged)

    def test_missing_alert_detected(self):
        condition = c1()
        u1 = parse_trace("1x(3100)")
        u2 = parse_trace("2x(3200)")
        merged = merge_single_variable(u1, u2)
        a2 = ConditionEvaluator(condition).ingest_all(u2)
        result = check_completeness_single(a2, condition, merged)
        assert not result
        assert len(result.missing) == 1
        assert not result.extraneous

    def test_extraneous_alert_detected(self):
        # Theorem 3's example: alerts a(2) and a(4) vs T(U1⊔U2) = {2,3,4}.
        condition = c3()
        u1 = parse_trace("1x(1000), 2x(1500)")
        u2 = parse_trace("3x(2000), 4x(2500)")
        merged = merge_single_variable(u1, u2)
        a1 = ConditionEvaluator(condition).ingest_all(u1)
        a2 = ConditionEvaluator(condition).ingest_all(u2)
        result = check_completeness_single(a1 + a2, condition, merged)
        assert not result
        # a(4x,3x) IS produced by T on merged input (3,4 consecutive), but
        # a(3x,2x) is missing from the displayed set.
        assert len(result.missing) == 1

    def test_empty_alerts_empty_reference(self):
        condition = c1()
        merged = parse_trace("1x(100)")  # never triggers
        assert check_completeness_single([], condition, merged)


class TestMultiVariable:
    def test_lemma_6_incomplete(self):
        example = lemma_6_example()
        displayed = [
            example.alert_streams[0][0],
            example.alert_streams[1][0],
        ]
        per_var = combine_received(example.traces, ("x", "y"))
        result = check_completeness_multi(
            displayed, example.condition, per_var
        )
        assert not result

    def test_witnessing_interleaving_found(self):
        # A single CE's own alerts are trivially complete for its own
        # interleaving.
        example = lemma_6_example()
        displayed = list(example.alert_streams[0])
        per_var = {
            "x": [u for u in example.traces[0] if u.varname == "x"],
            "y": [u for u in example.traces[0] if u.varname == "y"],
        }
        result = check_completeness_multi(displayed, example.condition, per_var)
        assert result
        assert result.witness_interleaving is not None

    def test_limit_yields_undecided(self):
        per_var = {
            "x": parse_trace(", ".join(f"{i}x" for i in range(1, 15))),
            "y": parse_trace(", ".join(f"{i}y" for i in range(1, 15))),
        }
        result = check_completeness_multi([], cm(), per_var, limit=3)
        assert not result
        assert result.undecided

    def test_enumerated_oracle_limit_raises(self):
        per_var = {
            "x": parse_trace(", ".join(f"{i}x" for i in range(1, 15))),
            "y": parse_trace(", ".join(f"{i}y" for i in range(1, 15))),
        }
        with pytest.raises(RuntimeError):
            check_completeness_multi_enumerated([], cm(), per_var, limit=100)

    def test_enumerated_oracle_matches_dfs(self):
        example = lemma_6_example()
        per_var = combine_received(example.traces, ("x", "y"))
        for displayed in (
            [example.alert_streams[0][0], example.alert_streams[1][0]],
            list(example.alert_streams[0]),
        ):
            dfs = check_completeness_multi(
                displayed, example.condition, per_var
            )
            enum = check_completeness_multi_enumerated(
                displayed, example.condition, per_var
            )
            assert bool(dfs) == bool(enum)
            assert dfs.missing == enum.missing
            assert dfs.extraneous == enum.extraneous


class TestDispatch:
    def test_single_variable_dispatch(self):
        condition = c1()
        u1 = parse_trace("1x(3100)")
        u2 = parse_trace("2x(3200)")
        a1 = ConditionEvaluator(condition).ingest_all(u1)
        a2 = ConditionEvaluator(condition).ingest_all(u2)
        assert check_completeness(a1 + a2, condition, [u1, u2])

    def test_multi_variable_dispatch(self):
        example = lemma_6_example()
        displayed = [
            example.alert_streams[0][0],
            example.alert_streams[1][0],
        ]
        assert not check_completeness(
            displayed, example.condition, list(example.traces)
        )
