"""Unit tests for Update and the paper's shorthand notation."""

import pytest

from repro.core.update import Update, format_trace, parse_trace, parse_update


class TestUpdate:
    def test_fields(self):
        update = Update("x", 7, 3000.0)
        assert update.varname == "x"
        assert update.seqno == 7
        assert update.value == 3000.0

    def test_value_defaults_to_zero(self):
        assert Update("x", 1).value == 0.0

    def test_rejects_empty_varname(self):
        with pytest.raises(ValueError):
            Update("", 1)

    def test_rejects_negative_seqno(self):
        with pytest.raises(ValueError):
            Update("x", -1)

    def test_equality_ignores_value(self):
        # Same (var, seqno) is the same stream position; the DM broadcasts
        # one value per seqno, so value is not part of identity.
        assert Update("x", 3, 100.0) == Update("x", 3, 200.0)

    def test_inequality_across_variables(self):
        assert Update("x", 3) != Update("y", 3)

    def test_ordering_by_seqno_within_variable(self):
        assert Update("x", 2) < Update("x", 10)

    def test_hashable(self):
        assert len({Update("x", 1, 5.0), Update("x", 1, 6.0)}) == 1

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Update("x", 1).seqno = 2  # type: ignore[misc]

    def test_replace_value(self):
        update = Update("x", 1, 5.0).replace_value(9.0)
        assert update.value == 9.0
        assert update.seqno == 1

    def test_shorthand_with_value(self):
        assert Update("x", 7, 3000.0).shorthand() == "7x(3000)"

    def test_shorthand_without_value(self):
        assert Update("x", 7, 3000.0).shorthand(with_value=False) == "7x"

    def test_shorthand_fractional_value(self):
        assert Update("p", 2, 52.5).shorthand() == "2p(52.5)"


class TestParseUpdate:
    def test_with_value(self):
        update = parse_update("7x(3000)")
        assert update == Update("x", 7)
        assert update.value == 3000.0

    def test_without_value(self):
        update = parse_update("7x")
        assert update.seqno == 7
        assert update.value == 0.0

    def test_default_value(self):
        assert parse_update("7x", default_value=1.5).value == 1.5

    def test_negative_value(self):
        assert parse_update("1x(-20.5)").value == -20.5

    def test_multichar_varname(self):
        update = parse_update("3price(99.5)")
        assert update.varname == "price"
        assert update.seqno == 3

    def test_whitespace_tolerated(self):
        assert parse_update("  7x ( 3000 ) ") == Update("x", 7)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_update("x7")
        with pytest.raises(ValueError):
            parse_update("")
        with pytest.raises(ValueError):
            parse_update("7x(abc)")

    def test_roundtrip(self):
        original = Update("x", 12, 345.0)
        assert parse_update(original.shorthand()) == original


class TestParseTrace:
    def test_paper_trace(self):
        updates = parse_trace("1x(2900), 2x(3100), 3x(3200)")
        assert [u.seqno for u in updates] == [1, 2, 3]
        assert [u.value for u in updates] == [2900.0, 3100.0, 3200.0]

    def test_mixed_variables(self):
        updates = parse_trace("2x, 6y, 1y, 3x")
        assert [(u.seqno, u.varname) for u in updates] == [
            (2, "x"),
            (6, "y"),
            (1, "y"),
            (3, "x"),
        ]

    def test_empty(self):
        assert parse_trace("") == []
        assert parse_trace("   ") == []

    def test_whitespace_separated(self):
        assert len(parse_trace("1x 2x 3x")) == 3

    def test_format_trace_roundtrip_style(self):
        updates = parse_trace("1x, 2x")
        assert format_trace(updates) == "<1x, 2x>"
        assert format_trace(updates, with_values=True) == "<1x(0), 2x(0)>"
