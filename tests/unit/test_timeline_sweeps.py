"""Unit tests for timeline rendering and parameter sweeps."""

from dataclasses import replace

from repro.analysis.sweeps import (
    SweepPoint,
    loss_sweep,
    render_sweep,
    replication_sweep,
)
from repro.analysis.timeline import TimelineRecorder, render_logical_timeline
from repro.components.system import MonitoringSystem, SystemConfig, run_system
from repro.core.condition import c1
from repro.workloads.scenarios import SINGLE_VARIABLE_SCENARIOS

WORKLOAD = {"x": [(t * 10.0, 3100.0 if t % 2 else 2900.0) for t in range(6)]}


class TestLogicalTimeline:
    def test_contains_all_lanes(self):
        run = run_system(c1(), WORKLOAD, SystemConfig(front_loss=0.0), seed=1)
        text = render_logical_timeline(run)
        assert "broadcast lane" in text
        assert "CE1 lane" in text
        assert "CE2 lane" in text
        assert "AD lane" in text

    def test_broadcast_times_rendered(self):
        run = run_system(c1(), WORKLOAD, SystemConfig(front_loss=0.0), seed=1)
        text = render_logical_timeline(run)
        assert "t=     0.0" in text
        assert "broadcast 1x(2900)" in text

    def test_alert_annotations(self):
        run = run_system(c1(), WORKLOAD, SystemConfig(front_loss=0.0), seed=1)
        text = render_logical_timeline(run)
        assert "-> a(2x)" in text

    def test_display_vs_filter_verdicts(self):
        run = run_system(c1(), WORKLOAD, SystemConfig(front_loss=0.0), seed=1)
        text = render_logical_timeline(run)
        assert "display" in text
        assert "filter" in text  # duplicate alerts from CE2

    def test_max_rows_truncation(self):
        run = run_system(c1(), WORKLOAD, SystemConfig(front_loss=0.0), seed=1)
        text = render_logical_timeline(run, max_rows=5)
        assert "more rows" in text
        assert len(text.splitlines()) == 6


class TestTimelineRecorder:
    def test_captures_timestamped_events(self):
        system = MonitoringSystem(c1(), WORKLOAD, SystemConfig(front_loss=0.0), seed=1)
        recorder = TimelineRecorder.attach(system)
        system.run()
        kinds = {e.kind for e in recorder.events}
        assert {"broadcast", "receive", "alert", "display"} <= kinds

    def test_event_counts_match_run(self):
        system = MonitoringSystem(c1(), WORKLOAD, SystemConfig(front_loss=0.0), seed=1)
        recorder = TimelineRecorder.attach(system)
        result = system.run()
        broadcasts = [e for e in recorder.events if e.kind == "broadcast"]
        receives = [e for e in recorder.events if e.kind == "receive"]
        displays = [e for e in recorder.events if e.kind == "display"]
        filters = [e for e in recorder.events if e.kind == "filter"]
        assert len(broadcasts) == len(result.sent["x"])
        assert len(receives) == sum(len(t) for t in result.received)
        assert len(displays) == len(result.displayed)
        assert len(filters) == len(result.filtered)

    def test_times_monotone_in_render(self):
        system = MonitoringSystem(c1(), WORKLOAD, SystemConfig(front_loss=0.2), seed=3)
        recorder = TimelineRecorder.attach(system)
        system.run()
        times = [e.time for e in sorted(recorder.events, key=lambda e: e.time)]
        assert times == sorted(times)
        assert recorder.render()  # renders without error

    def test_recorder_does_not_change_outcome(self):
        plain = run_system(c1(), WORKLOAD, SystemConfig(front_loss=0.3), seed=9)
        system = MonitoringSystem(c1(), WORKLOAD, SystemConfig(front_loss=0.3), seed=9)
        TimelineRecorder.attach(system)
        recorded = system.run()
        assert plain.displayed == recorded.displayed
        assert plain.received == recorded.received


class TestSweeps:
    def test_loss_sweep_monotone_signal(self):
        scenario = SINGLE_VARIABLE_SCENARIOS["aggressive"]
        points = loss_sweep(scenario, "AD-1", [0.0, 0.4], trials=15, n_updates=25)
        assert len(points) == 2
        zero, lossy = points
        assert zero.inconsistent_rate == 0.0  # lossless: Theorem 1
        assert lossy.inconsistent_rate > 0.0

    def test_loss_sweep_does_not_mutate_scenario(self):
        scenario = SINGLE_VARIABLE_SCENARIOS["aggressive"]
        original_loss = scenario.front_loss
        loss_sweep(scenario, "AD-1", [0.5], trials=2, n_updates=10)
        assert scenario.front_loss == original_loss

    def test_replication_sweep_guarantees_hold(self):
        # AD-4's guarantees must survive replication 3 (the paper: the
        # 2-CE analysis "can be easily extended").
        scenario = SINGLE_VARIABLE_SCENARIOS["aggressive"]
        points = replication_sweep(scenario, "AD-4", [2, 3], trials=15, n_updates=25)
        for point in points:
            assert point.unordered_rate == 0.0
            assert point.inconsistent_rate == 0.0

    def test_sweep_point_from_tally_handles_unchecked(self):
        from repro.props.report import PropertyTally

        point = SweepPoint.from_tally("p", 1.0, "AD-1", PropertyTally())
        assert point.incomplete_rate is None
        assert point.inconsistent_rate is None

    def test_render_sweep(self):
        scenario = SINGLE_VARIABLE_SCENARIOS["non-historical"]
        points = loss_sweep(scenario, "AD-1", [0.2], trials=5, n_updates=15)
        text = render_sweep("demo", points)
        assert "demo" in text
        assert "front_loss" in text
        assert "AD-1" in text
