"""Unit tests for the adaptive displayer (AD-7): ladder selection,
window policy, the recall guard, and decision determinism."""

import pytest

from repro.core.alert import alert_event_key
from repro.displayers import AD1, AdaptiveAD
from repro.displayers.registry import make_ad
from tests.conftest import alert_deg1, alert_deg2, alert_xy


def clean_deg2_stream(n):
    """An in-order duplicate-free degree-2 stream: ⟨2,1⟩, ⟨3,2⟩, …"""
    return [alert_deg2(head, head - 1) for head in range(2, n + 2)]


class TestConstruction:
    def test_single_variable_ladder(self):
        ad = AdaptiveAD(("x",))
        assert ad.ladder_names == ("AD-1", "AD-2", "AD-3", "AD-4")
        assert ad.active_name == "AD-1"

    def test_multi_variable_ladder(self):
        ad = AdaptiveAD(("x", "y"))
        assert ad.ladder_names == ("AD-1", "AD-5", "AD-6")

    def test_registry_constructs_from_condition(self, cond_cm):
        ad = make_ad("adaptive", cond_cm)
        assert isinstance(ad, AdaptiveAD)
        assert ad.varnames == ("x", "y")

    def test_registry_seeds_policy_by_condition_name(self, cond_c1, cond_c2):
        assert (
            make_ad("adaptive", cond_c1).policy_seed
            != make_ad("adaptive", cond_c2).policy_seed
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveAD(())
        with pytest.raises(ValueError):
            AdaptiveAD(("x",), window=3)

    def test_accept_is_bypassed(self):
        with pytest.raises(NotImplementedError):
            AdaptiveAD(("x",))._accept(alert_deg1(1))


class TestPolicy:
    def test_clean_stream_escalates_to_the_top_rung(self):
        ad = AdaptiveAD(("x",), policy_seed=7)
        ad.offer_all(clean_deg2_stream(40))
        assert ad.active_name == "AD-4"
        # Escalation climbs one rung per window, in ladder order.
        transitions = [(a, b) for _, a, b in ad.switch_log]
        assert transitions[:3] == [
            ("AD-1", "AD-2"),
            ("AD-2", "AD-3"),
            ("AD-3", "AD-4"),
        ]

    def test_guard_pressure_de_escalates(self):
        ad = AdaptiveAD(("x",), policy_seed=7)
        # Interleave high and low novel heads: every rung above AD-1
        # keeps rejecting genuinely novel events, so the guard keeps
        # overriding and the policy must fall back.
        stream = []
        for i in range(20):
            stream.append(alert_deg1(100 + i))
            stream.append(alert_deg1(1 + i))
        ad.offer_all(stream)
        transitions = [(a, b) for _, a, b in ad.switch_log]
        assert ("AD-1", "AD-2") in transitions
        assert ("AD-2", "AD-1") in transitions
        # Everything was a novel event: nothing may be lost to filtering.
        assert len(ad.output) == len(stream)

    def test_multi_variable_escalation(self):
        ad = AdaptiveAD(("x", "y"), policy_seed=3)
        stream = [alert_xy(i, i) for i in range(1, 40)]
        ad.offer_all(stream)
        assert ad.active_name == "AD-6"


class TestRecallGuard:
    def test_duplicates_always_suppressed(self):
        ad = AdaptiveAD(("x",))
        assert ad.offer(alert_deg1(1))
        assert not ad.offer(alert_deg1(1))
        assert ad.rejection_reason(alert_deg1(1)).startswith(
            "duplicate: history set of"
        )

    def test_detected_events_equal_ad1s_on_any_stream(self):
        # Duplicates, regressions, gaps — the adversarial mix.
        stream = [
            alert_deg2(h, p)
            for h, p in [(2, 1), (2, 1), (5, 3), (3, 2), (5, 4),
                         (2, 1), (9, 8), (4, 3), (9, 7), (6, 5)]
        ]
        adaptive = AdaptiveAD(("x",), policy_seed=1, window=4)
        ad1 = AD1()
        adaptive.offer_all(stream)
        ad1.offer_all(list(stream))

        def keys(displayed):
            return {alert_event_key(a, ("x",)) for a in displayed}

        arriving = keys(stream)
        assert keys(adaptive.output) == keys(ad1.output) == arriving

    def test_filtered_rejection_reports_the_constituent_reason(self):
        ad = AdaptiveAD(("x",), policy_seed=7)
        ad.offer_all(clean_deg2_stream(40))
        assert ad.active_name == "AD-4"
        # Head 10 was displayed as ⟨10,9⟩; the ⟨10,8⟩ variant is a new
        # identity for an already-detected event — filtered, with the
        # deciding constituent's reason cached at decision time.
        stale = alert_deg2(10, 8)
        assert not ad.offer(stale)
        reason = ad.rejection_reason(stale)
        assert reason.startswith("seqno regression")
        assert ad.rejection_reason(stale) == reason  # stable, no mutation

    def test_conservation(self):
        stream = [alert_deg1(s) for s in (1, 1, 2, 3, 2, 4, 4, 5)]
        ad = AdaptiveAD(("x",), window=4)
        ad.offer_all(stream)
        assert len(ad.output) + len(ad.discarded) == len(stream)


class TestDeterminism:
    def test_same_args_same_stream_same_decisions(self):
        stream = [
            alert_deg2(h, p)
            for h, p in [(2, 1), (3, 2), (2, 1), (7, 5), (4, 3),
                         (8, 7), (5, 4), (9, 8), (3, 2), (11, 10)]
        ] * 4
        a = AdaptiveAD(("x",), policy_seed=13, window=5)
        b = AdaptiveAD(("x",), policy_seed=13, window=5)
        a.offer_all(stream)
        b.offer_all(list(stream))
        assert a.output == b.output
        assert a.discarded == b.discarded
        assert a.switch_log == b.switch_log

    def test_fresh_replays_identically(self):
        stream = [alert_deg1(s) for s in (1, 3, 2, 5, 4, 7, 6, 9, 8, 10)] * 3
        ad = AdaptiveAD(("x",), policy_seed=2, window=4)
        ad.offer_all(stream)
        copy = ad.fresh()
        assert isinstance(copy, AdaptiveAD)
        assert (copy.varnames, copy.policy_seed, copy.window) == (
            ad.varnames, ad.policy_seed, ad.window,
        )
        copy.offer_all(list(stream))
        assert copy.output == ad.output
        assert copy.switch_log == ad.switch_log
