"""Unit tests for the §4.2 delayed-display alternative."""

import pytest

from repro.components.system import MonitoringSystem, SystemConfig
from repro.core.condition import c1
from repro.displayers.delayed import DelayedDisplayAD, attach_delayed_ad
from repro.props.orderedness import is_alert_sequence_ordered
from repro.simulation.kernel import Kernel
from tests.conftest import alert_deg1


def deliver(ad, kernel, schedule):
    """Feed (time, alert) pairs through the kernel."""
    for time, alert in schedule:
        kernel.schedule_at(time, lambda a=alert: ad.receive(a))
    kernel.run()


class TestDelayedDisplayAD:
    def test_in_order_stream_displayed_promptly(self):
        kernel = Kernel()
        ad = DelayedDisplayAD(kernel, "x", timeout=5.0)
        deliver(ad, kernel, [(0.0, alert_deg1(1)), (1.0, alert_deg1(2))])
        assert [a.seqno("x") for a in ad.displayed] == [1, 2]

    def test_straggler_within_timeout_is_reordered(self):
        # a2 arrives first; a1 arrives 1 unit later, inside the 5-unit
        # timeout: both display, in order — AD-2 would have dropped a1.
        kernel = Kernel()
        ad = DelayedDisplayAD(kernel, "x", timeout=5.0)
        deliver(ad, kernel, [(0.0, alert_deg1(2)), (1.0, alert_deg1(1))])
        assert [a.seqno("x") for a in ad.displayed] == [1, 2]
        assert is_alert_sequence_ordered(list(ad.displayed), ["x"])

    def test_straggler_after_timeout_causes_inversion(self):
        # a2's timeout fires at t=5; a1 arrives at t=8: unordered display,
        # exactly the failure mode the paper warns about.
        kernel = Kernel()
        ad = DelayedDisplayAD(kernel, "x", timeout=5.0)
        deliver(ad, kernel, [(0.0, alert_deg1(2)), (8.0, alert_deg1(1))])
        kernel.run(until=20.0)
        ad.flush()
        assert [a.seqno("x") for a in ad.displayed] == [2, 1]
        assert not is_alert_sequence_ordered(list(ad.displayed), ["x"])

    def test_nothing_dropped_except_duplicates(self):
        kernel = Kernel()
        ad = DelayedDisplayAD(kernel, "x", timeout=2.0)
        alerts = [alert_deg1(3), alert_deg1(1), alert_deg1(3), alert_deg1(2)]
        deliver(ad, kernel, [(i * 0.5, a) for i, a in enumerate(alerts)])
        ad.flush()
        assert [a.seqno("x") for a in ad.displayed] == [1, 2, 3]
        assert ad.arrivals == 4

    def test_late_arrival_after_forced_display_still_shown(self):
        kernel = Kernel()
        ad = DelayedDisplayAD(kernel, "x", timeout=2.0)
        alerts = [alert_deg1(3), alert_deg1(1), alert_deg1(2)]
        # Alert 2 arrives after 3's deadline fired: displayed, out of order
        # — delayed display trades orderedness for completeness.
        deliver(ad, kernel, [(0.0, alerts[0]), (1.0, alerts[1]), (3.0, alerts[2])])
        ad.flush()
        assert sorted(a.seqno("x") for a in ad.displayed) == [1, 2, 3]
        assert [a.seqno("x") for a in ad.displayed] == [1, 3, 2]

    def test_infinite_timeout_orders_everything_at_flush(self):
        kernel = Kernel()
        ad = DelayedDisplayAD(kernel, "x", timeout=float("inf"))
        deliver(
            ad,
            kernel,
            [(0.0, alert_deg1(5)), (1.0, alert_deg1(2)), (2.0, alert_deg1(9))],
        )
        assert len(ad.displayed) <= 1  # held indefinitely
        ad.flush()
        assert [a.seqno("x") for a in ad.displayed] == [2, 5, 9]

    def test_zero_timeout_is_arrival_order(self):
        kernel = Kernel()
        ad = DelayedDisplayAD(kernel, "x", timeout=0.0)
        deliver(ad, kernel, [(0.0, alert_deg1(2)), (3.0, alert_deg1(1))])
        assert [a.seqno("x") for a in ad.displayed] == [2, 1]

    def test_latency_accounting(self):
        kernel = Kernel()
        ad = DelayedDisplayAD(kernel, "x", timeout=4.0)
        deliver(ad, kernel, [(0.0, alert_deg1(2))])
        # Lone out-of-sequence alert waits its full timeout.
        assert ad.mean_added_latency() == pytest.approx(4.0)

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            DelayedDisplayAD(Kernel(), "x", timeout=-1.0)

    def test_rejects_non_alert(self):
        ad = DelayedDisplayAD(Kernel(), "x", timeout=1.0)
        with pytest.raises(TypeError):
            ad.receive("nope")


class TestAttachToSystem:
    WORKLOAD = {"x": [(t * 10.0, 3100.0) for t in range(12)]}

    def test_attach_and_run(self):
        config = SystemConfig(replication=2, front_loss=0.3)
        system = MonitoringSystem(c1(), self.WORKLOAD, config, seed=5)
        delayed = attach_delayed_ad(system, timeout=40.0)
        system.run()
        delayed.flush()
        assert len(delayed.displayed) > 0
        # The original ADNode was bypassed entirely.
        assert system.ad.arrivals == ()

    def test_large_timeout_displays_superset_of_ad2(self):
        from repro.components.system import run_system

        config = SystemConfig(replication=2, front_loss=0.3, ad_algorithm="AD-2")
        for seed in range(8):
            baseline = run_system(c1(), self.WORKLOAD, config, seed=seed)
            system = MonitoringSystem(c1(), self.WORKLOAD, config, seed=seed)
            delayed = attach_delayed_ad(system, timeout=100.0)
            system.run()
            delayed.flush()
            ad2_ids = {a.identity() for a in baseline.displayed}
            delayed_ids = {a.identity() for a in delayed.displayed}
            assert ad2_ids <= delayed_ids

    def test_multi_variable_rejected(self):
        from repro.core.condition import cm

        workload = {
            "x": [(0.0, 1000.0)],
            "y": [(0.0, 1200.0)],
        }
        system = MonitoringSystem(cm(), workload, SystemConfig(), seed=1)
        with pytest.raises(ValueError):
            attach_delayed_ad(system, timeout=1.0)
