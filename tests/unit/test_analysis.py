"""Unit tests for metrics, table machinery, and experiment drivers."""

import pytest

from repro.analysis.experiments import collect_arrival_streams
from repro.analysis.metrics import collect_metrics, delivery_stats
from repro.analysis.tables import (
    EXPECTED_GRIDS,
    TABLE_CONFIG,
    build_table,
    grid_matches,
    render_table,
)
from repro.components.system import SystemConfig, run_system
from repro.core.condition import c1


WORKLOAD = {"x": [(float(t) * 10, 3100.0 if t % 2 else 2900.0) for t in range(10)]}


class TestMetrics:
    def test_collect_metrics_counts(self):
        config = SystemConfig(replication=2, front_loss=0.0)
        run = run_system(c1(), WORKLOAD, config, seed=1)
        metrics = collect_metrics(run)
        assert metrics.updates_sent == 10
        assert metrics.updates_received_per_ce == (10, 10)
        assert metrics.alerts_arrived == sum(metrics.alerts_generated_per_ce)
        assert metrics.mean_loss_fraction == 0.0

    def test_loss_fraction_under_loss(self):
        config = SystemConfig(replication=2, front_loss=0.5)
        run = run_system(c1(), WORKLOAD, config, seed=1)
        metrics = collect_metrics(run)
        assert metrics.mean_loss_fraction > 0.0

    def test_filter_fraction(self):
        config = SystemConfig(replication=2, front_loss=0.0, ad_algorithm="AD-1")
        run = run_system(c1(), WORKLOAD, config, seed=1)
        metrics = collect_metrics(run)
        # Lossless: CE2's alerts are exact duplicates -> half filtered.
        assert metrics.filter_fraction == pytest.approx(0.5)

    def test_delivery_stats_perfect_system(self):
        config = SystemConfig(replication=2, front_loss=0.0)
        run = run_system(c1(), WORKLOAD, config, seed=1)
        stats = delivery_stats(run)
        assert stats.expected == 5  # alternating above-threshold readings
        assert stats.delivered == 5
        assert stats.miss_fraction == 0.0

    def test_delivery_stats_total_loss(self):
        config = SystemConfig(replication=1, front_loss=1.0)
        run = run_system(c1(), WORKLOAD, config, seed=1)
        stats = delivery_stats(run)
        assert stats.delivered == 0
        assert stats.miss_fraction == 1.0

    def test_zero_expected_miss_fraction(self):
        cold = {"x": [(0.0, 2000.0)]}
        config = SystemConfig(replication=1, front_loss=0.0)
        run = run_system(c1(), cold, config, seed=1)
        assert delivery_stats(run).miss_fraction == 0.0


class TestGridMatching:
    def test_exact_match(self):
        expected = EXPECTED_GRIDS["table1"]
        assert grid_matches(expected, expected)

    def test_mismatch_detected(self):
        expected = EXPECTED_GRIDS["table1"]
        wrong = dict(expected)
        wrong["lossless"] = (False, True, True)
        assert not grid_matches(wrong, expected)

    def test_none_cells_tolerated(self):
        expected = {"row": (True, False, True)}
        measured = {"row": (True, None, True)}
        assert grid_matches(measured, expected)

    def test_missing_row_fails(self):
        assert not grid_matches({}, {"row": (True, True, True)})

    def test_every_table_has_config_and_grid(self):
        assert set(EXPECTED_GRIDS) == set(TABLE_CONFIG)


class TestBuildTable:
    def test_small_table1_run(self):
        result = build_table("table1", trials=5, n_updates=12)
        assert set(result.tallies) == {
            "lossless",
            "non-historical",
            "conservative",
            "aggressive",
        }
        assert all(t.runs == 5 for t in result.tallies.values())

    def test_lossless_cells_always_clean(self):
        # The ✓ cells are theorems: even tiny runs must never violate them.
        result = build_table("table1", trials=5, n_updates=12)
        lossless = result.tallies["lossless"]
        assert lossless.always_ordered
        assert lossless.always_complete
        assert lossless.always_consistent

    def test_render_contains_rows(self):
        result = build_table("table2", trials=3, n_updates=10)
        text = render_table(result)
        assert "AD-2" in text
        for row in result.tallies:
            assert row in text

    def test_unknown_table_rejected(self):
        with pytest.raises(KeyError):
            build_table("table9")


class TestCollectArrivalStreams:
    def test_streams_collected(self):
        streams = collect_arrival_streams(trials=4, n_updates=10)
        assert 0 < len(streams) <= 4
        for stream in streams:
            assert len(stream) > 0

    def test_reproducible(self):
        s1 = collect_arrival_streams(trials=3, n_updates=10, base_seed=5)
        s2 = collect_arrival_streams(trials=3, n_updates=10, base_seed=5)
        assert s1 == s2
