"""Unit tests for the textual condition parser."""

import pytest

from repro.core.history import HistorySet
from repro.core.parser import ConditionSyntaxError, parse_condition, parse_expression
from repro.core.update import Update


def evaluate(text, pairs, var="x"):
    condition = parse_condition("t", text)
    histories = HistorySet(condition.degrees)
    for seqno, value in pairs:
        histories.push(Update(var, seqno, value))
    return condition.evaluate(histories)


class TestParsePaperConditions:
    def test_c1(self):
        assert evaluate("H.x[0].value > 3000", [(1, 3100.0)])
        assert not evaluate("H.x[0].value > 3000", [(1, 2900.0)])

    def test_c2(self):
        text = "H.x[0].value - H.x[-1].value > 200"
        assert evaluate(text, [(1, 400.0), (3, 720.0)])

    def test_c3(self):
        text = (
            "H.x[0].value - H.x[-1].value > 200 "
            "and H.x[0].seqno == H.x[-1].seqno + 1"
        )
        assert not evaluate(text, [(1, 400.0), (3, 720.0)])
        assert evaluate(text, [(1, 400.0), (2, 700.0)])

    def test_cm(self):
        condition = parse_condition("cm", "abs(H.x[0].value - H.y[0].value) > 100")
        assert condition.variables == ("x", "y")
        histories = HistorySet(condition.degrees)
        histories.push(Update("x", 1, 1000.0))
        histories.push(Update("y", 1, 1150.0))
        assert condition.evaluate(histories)

    def test_matches_dsl_equivalent(self):
        from repro.core.condition import c2
        from repro.core.evaluator import ConditionEvaluator
        from repro.core.update import parse_trace

        parsed = parse_condition("c2", "H.x[0].value - H.x[-1].value > 200")
        trace = parse_trace("1x(100), 2x(350), 3x(360), 4x(620)")
        dsl_alerts = ConditionEvaluator(c2()).ingest_all(trace)
        parsed_alerts = ConditionEvaluator(parsed).ingest_all(trace)
        assert [a.seqno("x") for a in dsl_alerts] == [
            a.seqno("x") for a in parsed_alerts
        ]


class TestGrammar:
    def test_bracket_variable_names(self):
        condition = parse_condition("p", "H['stock price'][0].value < 50")
        assert condition.variables == ("stock price",)

    def test_degrees_inferred(self):
        condition = parse_condition(
            "deep", "H.x[0].value > 0 and H.x[-2].value > 0"
        )
        assert condition.degree("x") == 3

    def test_or_and_not(self):
        assert evaluate("H.x[0].value > 10 or H.x[0].value < -10", [(1, 20.0)])
        assert evaluate("not H.x[0].value > 10", [(1, 5.0)])

    def test_unary_minus_and_division(self):
        assert evaluate("-H.x[0].value / 2 == -5", [(1, 10.0)])

    def test_nested_negated_literals_fold_in_one_pass(self):
        # "-(-(-0))" must normalise to the literal "-0" on the first
        # parse/render round, not leave a Neg node for a second round.
        from repro.core.parser import parse_expression
        from repro.core.serialization import expression_to_text

        once = expression_to_text(parse_expression("(0 > (-(-(-5))))"))
        assert once == expression_to_text(parse_expression(once)) == "(0 > -5)"

    def test_reversed_operand_order(self):
        assert evaluate("3000 < H.x[0].value", [(1, 3100.0)])

    def test_conservative_flag(self):
        condition = parse_condition(
            "g", "H.x[0].value - H.x[-1].value > 0", conservative=True
        )
        assert condition.is_conservative


class TestRejections:
    @pytest.mark.parametrize(
        "text",
        [
            "__import__('os').system('true')",      # call
            "H.x[0].value.__class__",                # dunder attribute
            "open('/etc/passwd')",                   # call
            "x + 1 > 2",                             # bare name
            "H.x[0].timestamp > 0",                  # unknown field
            "H.x[1].value > 0",                      # positive index
            "H.x[0].value",                          # not boolean
            "H.x[0].value > 1 > 2",                  # chained comparison
            "H.x[0].value ** 2 > 4",                 # unsupported operator
            "H.x['a'].value > 0",                    # non-int index
            "lambda: 1",                             # lambda
            "'str' == 'str'",                        # non-numeric literal
            "True and False",                        # bare booleans
            "abs(1, 2) > 0",                         # wrong arity
            "max(H.x[0].value, 1) > 0",              # non-abs call
            "(1 > 0) if True else (2 > 0)",          # conditional
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(ConditionSyntaxError):
            parse_expression(text)

    def test_invalid_python_syntax(self):
        with pytest.raises(ConditionSyntaxError):
            parse_expression("H.x[0].value >")

    def test_error_message_carries_fragment(self):
        with pytest.raises(ConditionSyntaxError, match="timestamp"):
            parse_expression("H.x[0].timestamp > 0")
