"""Unit tests for the coverage-guided fuzzer building blocks.

Campaign-level behaviour (differential oracles, shrinker laws, pinned
minimal witnesses) lives in the integration and property suites; here we
pin the value-object semantics: signature extraction, mutation bounds,
config validation, corpus/finding bookkeeping, and the shrinker's
contract on single inputs.
"""

from random import Random

import pytest

from repro.analysis.witness import violates
from repro.engine.spec import TrialSpec
from repro.faults import DEFAULT_CHAOS_PROFILE, PROFILE_FIELD_KINDS
from repro.fuzz import (
    FuzzConfig,
    FuzzEngine,
    MutationLimits,
    coverage_signature,
    mutate_spec,
    new_features,
    shrink_spec,
    signature_key,
    uniform_specs,
)
from repro.fuzz.coverage import covered_kind
from repro.observability import replay_trace


class TestCoveredKind:
    def test_behavioural_stages_always_covered(self):
        assert covered_kind("fault", "ce-crash")
        assert covered_kind("dm", "suppress")
        assert covered_kind("ad", "display")

    def test_link_deviations_covered_bulk_traffic_not(self):
        assert covered_kind("link", "drop")
        assert covered_kind("link", "drop:burst")
        assert covered_kind("link", "hold")
        assert covered_kind("link", "duplicate")
        assert not covered_kind("link", "send")
        assert not covered_kind("link", "deliver")

    def test_ce_alert_surface_covered_updates_not(self):
        assert covered_kind("ce", "missed")
        assert covered_kind("ce", "alert-raised")
        assert not covered_kind("ce", "update-received")

    def test_kernel_stage_never_covered(self):
        assert not covered_kind("kernel", "event")


class TestCoverageSignature:
    SUMMARY = {"ordered": True, "complete": False, "consistent": None}

    def test_verdict_vector_always_present(self):
        signature = coverage_signature(None, self.SUMMARY)
        assert signature == {
            "verdict:ordered:True",
            "verdict:complete:False",
            "verdict:consistent:None",
        }

    def test_hits_and_per_stage_buckets(self):
        counters = {
            "link/drop:burst/DM-x->CE1": 3,
            "link/send/DM-x->CE1": 50,  # bulk traffic: excluded
            "ad/display/AD": 2,
            "ad/reject:seqno regression/AD": 1,
        }
        signature = coverage_signature(counters, self.SUMMARY)
        assert "hit:link/drop:burst" in signature
        assert "hit:ad/display" in signature
        assert "hit:ad/reject:seqno regression" in signature
        assert not any("send" in feature for feature in signature)
        # Buckets are per stage: link total 3 -> bucket 2, ad total 3 -> 2.
        assert "n:link:2" in signature
        assert "n:ad:2" in signature

    def test_bucket_collapses_nearby_counts(self):
        low = coverage_signature({"link/drop/L": 5}, self.SUMMARY)
        same = coverage_signature({"link/drop/L": 7}, self.SUMMARY)
        higher = coverage_signature({"link/drop/L": 9}, self.SUMMARY)
        assert low == same  # 5 and 7 share bit_length 3
        assert low != higher  # 9 crosses into bucket 4

    def test_key_is_canonical_and_new_features_subtracts(self):
        signature = coverage_signature(None, self.SUMMARY)
        assert signature_key(signature) == tuple(sorted(signature))
        seen = {"verdict:ordered:True"}
        fresh = new_features(signature, seen)
        assert "verdict:ordered:True" not in fresh
        assert "verdict:complete:False" in fresh


BASE_SPEC = TrialSpec(
    "single", "aggressive", "AD-2", 7, 20, replication=2,
    collect_coverage=True,
)


class TestMutateSpec:
    def test_deterministic_in_the_rng(self):
        children_a = [
            mutate_spec(BASE_SPEC, Random("m/0")) for _ in range(20)
        ]
        children_b = [
            mutate_spec(BASE_SPEC, Random("m/0")) for _ in range(20)
        ]
        assert children_a == children_b

    def test_respects_limits_and_simulator_domains(self):
        limits = MutationLimits(min_updates=4, max_updates=40,
                                max_replication=3)
        rng = Random("m/1")
        spec = BASE_SPEC
        for _ in range(300):
            spec = mutate_spec(spec, rng, limits)
            assert limits.min_updates <= spec.n_updates <= limits.max_updates
            assert 1 <= spec.replication <= limits.max_replication
            assert spec.seed >= 0
            if spec.front_loss is not None:
                assert 0.0 <= spec.front_loss <= 1.0
            if spec.faults is not None:
                assert not spec.faults.is_clean
                for name, kind in PROFILE_FIELD_KINDS.items():
                    value = getattr(spec.faults, name)
                    if kind == "prob":
                        assert 0.0 <= value <= 1.0
                    elif kind == "factor":
                        assert value >= 1.0
                    elif kind == "count":
                        assert value >= 1
                    else:
                        assert value >= 0.0

    def test_never_touches_matrix_or_algorithm(self):
        # The row may jump (to any row of the same matrix, including the
        # diversity traffic shapes), but the matrix and algorithm pin the
        # fuzz campaign's cell: changing them would change which
        # single-variable algorithms are even constructible.
        from repro.engine.spec import SCENARIO_MATRICES

        rng = Random("m/2")
        rows = set()
        for _ in range(100):
            child = mutate_spec(BASE_SPEC, rng)
            assert child.matrix == BASE_SPEC.matrix
            assert child.algorithm == BASE_SPEC.algorithm
            assert child.row in SCENARIO_MATRICES[child.matrix]
            assert child.collect_coverage
            rows.add(child.row)
        assert len(rows) > 1  # the row-jump mutation is actually live

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError):
            MutationLimits(min_updates=0)
        with pytest.raises(ValueError):
            MutationLimits(min_updates=10, max_updates=5)


class TestFuzzConfig:
    def test_rejects_unknown_target_and_bad_budget(self):
        with pytest.raises(ValueError):
            FuzzConfig(target="availability")
        with pytest.raises(ValueError):
            FuzzConfig(budget=0)
        with pytest.raises(ValueError):
            FuzzConfig(batch_size=0)
        assert FuzzConfig(target=None).target is None

    def test_initial_specs_deterministic_and_coverage_enabled(self):
        config = FuzzConfig(fuzz_seed=3)
        first = config.initial_specs()
        assert first == FuzzConfig(fuzz_seed=3).initial_specs()
        assert first != FuzzConfig(fuzz_seed=4).initial_specs()
        assert all(spec.collect_coverage for spec in first)
        # One entry seeds the fault surface so mutation can reach it.
        assert sum(spec.faults is not None for spec in first) == 1

    def test_initial_specs_respect_a_tiny_budget(self):
        assert len(FuzzConfig(budget=3).initial_specs()) == 3


class TestUniformSpecs:
    def test_budget_many_distinct_sequential_seeds(self):
        config = FuzzConfig(budget=17)
        specs = uniform_specs(config)
        assert len(specs) == 17
        assert len({spec.seed for spec in specs}) == 17
        assert all(spec.collect_coverage for spec in specs)
        assert all(spec.faults is None for spec in specs)


class TestFuzzEngine:
    CONFIG = FuzzConfig(budget=80, batch_size=16)

    def test_campaign_is_deterministic(self):
        first = FuzzEngine(self.CONFIG).run()
        second = FuzzEngine(self.CONFIG).run()
        assert first.executed == second.executed == 80
        assert [f.spec for f in first.findings] == [
            f.spec for f in second.findings
        ]
        assert first.distinct_signatures == second.distinct_signatures

    def test_findings_are_deduplicated_by_signature(self):
        result = FuzzEngine(self.CONFIG).run()
        keys = [signature_key(f.signature) for f in result.findings]
        assert len(keys) == len(set(keys))
        assert result.distinct_violating_signatures == len(result.findings)

    def test_findings_replay_without_collection_flags(self):
        result = FuzzEngine(self.CONFIG).run()
        assert result.findings, "the aggressive/AD-2 cell must yield some"
        finding = result.findings[0]
        witness = finding.witness_spec
        assert not witness.collect_coverage
        assert violates(witness.execute(), finding.violation)

    def test_corpus_growth_is_bounded_by_new_features(self):
        result = FuzzEngine(self.CONFIG).run()
        assert 1 <= result.corpus_size <= result.executed
        assert result.features >= 3  # at least the verdict vector


class TestShrinkSpec:
    @staticmethod
    def _violating_spec(n_updates: int = 12) -> TrialSpec:
        for seed in range(200):
            spec = TrialSpec("single", "aggressive", "AD-2", seed, n_updates)
            if violates(spec.execute(), "consistent"):
                return spec
        raise AssertionError("no consistency violation in 200 seeds")

    def test_refuses_a_non_violating_input(self):
        # AD-3 guarantees consistency; there is nothing to shrink.
        spec = TrialSpec("single", "aggressive", "AD-3", 0, 10)
        with pytest.raises(ValueError, match="does not violate"):
            shrink_spec(spec, "consistent")

    def test_shrunk_witness_still_violates_and_replays(self):
        spec = self._violating_spec()
        result = shrink_spec(spec, "consistent")
        assert result.spec.n_updates <= spec.n_updates
        assert violates(result.spec.execute(), "consistent")
        assert result.counterexample.violation == "consistent"
        replay = replay_trace(result.trace)
        assert replay.identical, replay.describe()

    def test_shrinking_strips_collection_flags(self):
        spec = self._violating_spec()
        flagged = TrialSpec(
            spec.matrix, spec.row, spec.algorithm, spec.seed,
            spec.n_updates, collect_coverage=True,
        )
        result = shrink_spec(flagged, "consistent")
        assert not result.spec.collect_coverage
        assert not result.spec.collect_counters

    def test_shrink_result_describes_itself(self):
        result = shrink_spec(self._violating_spec(), "consistent")
        text = result.describe()
        assert "shrunk witness" in text
        assert "consistent violated" in text


class TestFaultProfileMutationSupport:
    def test_with_value_clamps_by_kind(self):
        profile = DEFAULT_CHAOS_PROFILE
        assert profile.with_value("duplicate_prob", 2.0).duplicate_prob == 1.0
        assert profile.with_value("duplicate_prob", -1.0).duplicate_prob == 0.0
        assert profile.with_value("ce_crash_rate", -0.5).ce_crash_rate == 0.0
        assert (
            profile.with_value("delay_spike_factor", 0.2).delay_spike_factor
            == 1.0
        )
        assert profile.with_value("max_duplicates", 0).max_duplicates == 1

    def test_with_value_rejects_unknown_fields(self):
        with pytest.raises(KeyError):
            DEFAULT_CHAOS_PROFILE.with_value("not_a_field", 1.0)


class TestShardingMutationAndShrink:
    """The shard-count/ring mutators and the drop-to-one-shard shrink step."""

    def test_mutated_shard_configs_stay_valid(self):
        from random import Random

        from repro.fuzz.mutate import _mutate_ring, _mutate_shards

        rng = Random("shard/0")
        spec = BASE_SPEC
        saw_sharded = saw_unsharded = False
        for _ in range(200):
            spec = rng.choice((_mutate_shards, _mutate_ring))(spec, rng, None)
            if spec.sharding is None:
                saw_unsharded = True
            else:
                saw_sharded = True
                assert spec.sharding.shards >= 1
                assert spec.sharding.virtual_nodes >= 1
                assert spec.sharding.ring_seed >= 0
        # The catalog must both attach rings and drop back to one shard.
        assert saw_sharded and saw_unsharded

    def test_shard_mutator_never_repeats_the_current_count(self):
        from random import Random

        from repro.fuzz.mutate import _mutate_shards
        from repro.sharding import ShardConfig

        rng = Random("shard/1")
        spec = TrialSpec(
            BASE_SPEC.matrix, BASE_SPEC.row, BASE_SPEC.algorithm, 0, 10,
            sharding=ShardConfig(shards=3),
        )
        for _ in range(50):
            child = _mutate_shards(spec, rng, None)
            count = 1 if child.sharding is None else child.sharding.shards
            assert count != 3

    def test_sharding_shrink_steps_drop_first_then_normalize(self):
        from repro.fuzz.shrink import _sharding_steps
        from repro.sharding import ShardConfig

        spec = TrialSpec(
            "single", "aggressive", "AD-2", 0, 10,
            sharding=ShardConfig(shards=4, virtual_nodes=16, ring_seed=2),
        )
        steps = list(_sharding_steps(spec))
        assert steps[0].sharding is None  # cheapest question first
        assert steps[1].sharding == ShardConfig(
            shards=3, virtual_nodes=16, ring_seed=2
        )
        remaining = {step.sharding for step in steps[2:]}
        assert remaining == {
            ShardConfig(shards=4, virtual_nodes=64, ring_seed=2),
            ShardConfig(shards=4, virtual_nodes=16, ring_seed=0),
        }
        assert list(_sharding_steps(TrialSpec(
            "single", "aggressive", "AD-2", 0, 10
        ))) == []

    def test_shrink_drops_sharding_and_matches_unsharded_witness(self):
        """Shrink soundness: sharding is semantics-neutral, so the
        drop-to-one-shard step must always land, and a sharded violating
        spec must shrink to the *same* 1-minimal witness as its
        unsharded twin (same violation, same trace)."""
        from dataclasses import replace

        from repro.sharding import ShardConfig

        base = TestShrinkSpec._violating_spec()
        sharded = replace(
            base, sharding=ShardConfig(shards=8, virtual_nodes=16, ring_seed=3)
        )
        assert violates(sharded.execute(), "consistent")
        result = shrink_spec(sharded, "consistent")
        assert result.spec.sharding is None
        unsharded_result = shrink_spec(base, "consistent")
        assert result.spec == unsharded_result.spec
        assert violates(result.spec.execute(), "consistent")
