"""Unit tests for Appendix D: multiple conditions."""

import pytest

from repro.core.condition import c1, c2, c3
from repro.core.evaluator import ConditionEvaluator
from repro.core.update import Update, parse_trace
from repro.displayers.ad1 import AD1
from repro.displayers.ad2 import AD2
from repro.multicondition.combined import (
    DisjunctionCondition,
    PerConditionAD,
    example_4,
    trim_histories,
)
from repro.core.history import HistorySet


class TestDisjunctionCondition:
    def test_degrees_are_max_over_constituents(self):
        combined = DisjunctionCondition("C", [c1(), c2()])
        assert combined.degree("x") == 2

    def test_triggers_when_any_constituent_does(self):
        combined = DisjunctionCondition("C", [c1(), c2()])
        ce = ConditionEvaluator(combined)
        # 2900 -> 3050: c1 fires (>3000), c2 does not (rise 150 < 200).
        ce.ingest(Update("x", 1, 2900.0))
        alert = ce.ingest(Update("x", 2, 3050.0))
        assert alert is not None

    def test_silent_when_no_constituent_fires(self):
        combined = DisjunctionCondition("C", [c1(), c2()])
        ce = ConditionEvaluator(combined)
        ce.ingest(Update("x", 1, 2900.0))
        assert ce.ingest(Update("x", 2, 2950.0)) is None

    def test_conservative_constituent_keeps_its_guard(self):
        # c3 inside a disjunction must not fire across a gap, while the
        # aggressive c2 in the same disjunction may.
        only_c3 = DisjunctionCondition("C", [c3()])
        ce = ConditionEvaluator(only_c3)
        ce.ingest(Update("x", 1, 400.0))
        assert ce.ingest(Update("x", 3, 720.0)) is None

        with_c2 = DisjunctionCondition("C", [c3(), c2()])
        ce2 = ConditionEvaluator(with_c2)
        ce2.ingest(Update("x", 1, 400.0))
        assert ce2.ingest(Update("x", 3, 720.0)) is not None

    def test_conservativeness_classification(self):
        assert DisjunctionCondition("C", [c3()]).is_conservative
        assert not DisjunctionCondition("C", [c3(), c2()]).is_conservative

    def test_union_of_variable_sets(self):
        from repro.core.condition import cm

        combined = DisjunctionCondition("C", [c1(), cm()])
        assert combined.variables == ("x", "y")

    def test_requires_conditions(self):
        with pytest.raises(ValueError):
            DisjunctionCondition("C", [])


class TestTrimHistories:
    def test_trims_to_degree(self):
        histories = HistorySet({"x": 3})
        for seqno in (1, 2, 3):
            histories.push(Update("x", seqno, float(seqno)))
        trimmed = trim_histories(histories, {"x": 2})
        assert trimmed.seqnos("x") == (3, 2)

    def test_accepts_snapshot_input(self):
        histories = HistorySet({"x": 2})
        histories.push(Update("x", 1, 1.0))
        histories.push(Update("x", 2, 2.0))
        trimmed = trim_histories(histories.snapshot(), {"x": 1})
        assert trimmed.seqnos("x") == (2,)


class TestPerConditionAD:
    def _alert(self, cond, seqno):
        ce = ConditionEvaluator(cond)
        alerts = ce.ingest_all(
            [Update("x", s, 3100.0) for s in range(1, seqno + 1)]
        )
        return alerts[-1]

    def test_routes_by_condname(self):
        cond_a = c1(name="A")
        cond_b = c1(name="B")
        ad = PerConditionAD({"A": AD2("x"), "B": AD2("x")})
        a2 = self._alert(cond_a, 2)
        b1 = self._alert(cond_b, 1)
        assert ad.offer(a2) is True
        # B's stream has its own `last`: seqno 1 still passes there.
        assert ad.offer(b1) is True
        assert ad.stream("A") == (a2,)
        assert ad.stream("B") == (b1,)

    def test_per_stream_filtering_independent(self):
        cond_a = c1(name="A")
        ad = PerConditionAD({"A": AD2("x")})
        a2 = self._alert(cond_a, 2)
        a1 = self._alert(cond_a, 1)
        assert ad.offer(a2) is True
        assert ad.offer(a1) is False  # out of order within A's stream

    def test_displayed_is_arrival_interleaving(self):
        cond_a = c1(name="A")
        cond_b = c1(name="B")
        ad = PerConditionAD({"A": AD1(), "B": AD1()})
        a1 = self._alert(cond_a, 1)
        b1 = self._alert(cond_b, 1)
        ad.offer_all([a1, b1])
        assert ad.displayed == (a1, b1)

    def test_unknown_condition_rejected(self):
        ad = PerConditionAD({"A": AD1()})
        b1 = self._alert(c1(name="B"), 1)
        with pytest.raises(KeyError):
            ad.offer(b1)

    def test_requires_algorithms(self):
        with pytest.raises(ValueError):
            PerConditionAD({})


class TestExample4:
    def test_both_conditions_trigger(self):
        alerts_a, alerts_b = example_4()
        assert len(alerts_a) >= 1
        assert len(alerts_b) >= 1

    def test_alerts_are_contradictory(self):
        # A says x > y; B says y > x — on the same pair of updates.
        alerts_a, alerts_b = example_4()
        assert alerts_a[0].condname == "A"
        assert alerts_b[0].condname == "B"
