"""Unit tests for the observability layer: events, tracers, trace files,
rejection reasons and the ``repro trace`` CLI."""

import json

import pytest

from repro.cli import main
from repro.core.alert import make_alert
from repro.core.update import Update
from repro.displayers import AD1, AD2, AD3, AD4, AD5, AD6
from repro.displayers.registry import make_ad
from tests.conftest import alert_deg1, alert_deg2, alert_xy
from repro.engine.spec import TrialSpec
from repro.observability import (
    SCHEMA_VERSION,
    CountersTracer,
    MemoryTracer,
    NullTracer,
    ReasonCountersTracer,
    RecordedTrace,
    TeeTracer,
    TraceEvent,
    Tracer,
    TraceSchemaError,
    event_from_json_obj,
    load_trace,
    record_trial,
    replay_trace,
    summarize_trace,
)


class TestTraceEvent:
    def test_json_line_is_canonical(self):
        event = TraceEvent(1.5, "link", "drop", "DM-x->CE1",
                           {"tag": 3, "reason": "loss"})
        line = event.json_line()
        assert line == (
            '{"data":{"reason":"loss","tag":3},"kind":"drop",'
            '"node":"DM-x->CE1","stage":"link","t":1.5}'
        )

    def test_json_round_trip(self):
        event = TraceEvent(2.0, "ad", "filter", "AD", {"reason": "duplicate"})
        decoded = event_from_json_obj(json.loads(event.json_line()))
        assert decoded == event
        assert decoded.json_line() == event.json_line()

    def test_empty_data_is_omitted(self):
        event = TraceEvent(0.0, "kernel", "fire", "")
        assert "data" not in event.to_json_obj()
        assert event_from_json_obj(json.loads(event.json_line())) == event

    def test_counter_key(self):
        assert TraceEvent(0.0, "ce", "missed", "CE2").key() == "ce/missed/CE2"


class TestTracers:
    def test_all_implementations_satisfy_the_protocol(self):
        for tracer in (NullTracer(), MemoryTracer(), CountersTracer(),
                       TeeTracer()):
            assert isinstance(tracer, Tracer)

    def test_memory_tracer_records_in_order(self):
        tracer = MemoryTracer()
        tracer.emit(1.0, "link", "send", "L", tag=0)
        tracer.emit(2.0, "link", "deliver", "L", tag=0)
        assert len(tracer) == 2
        assert [e.kind for e in tracer.events] == ["send", "deliver"]
        assert tracer.event_lines() == [e.json_line() for e in tracer.events]

    def test_counters_tracer_counts_and_aggregates(self):
        tracer = CountersTracer()
        tracer.emit(1.0, "link", "send", "A")
        tracer.emit(2.0, "link", "send", "A")
        tracer.emit(3.0, "link", "send", "B")
        tracer.emit(4.0, "link", "drop", "A", reason="loss")
        assert tracer.as_dict() == {
            "link/drop/A": 1, "link/send/A": 2, "link/send/B": 1,
        }
        assert tracer.total("link", "send") == 3
        assert tracer.node_total("link", "send", "A") == 2
        assert tracer.node_total("link", "deliver", "A") == 0
        assert tracer.stage_summary() == {"link": {"drop": 1, "send": 3}}

    def test_tee_tracer_fans_out(self):
        memory = MemoryTracer()
        counters = CountersTracer()
        tee = TeeTracer(memory, counters)
        tee.emit(1.0, "ad", "arrive", "AD", alert="a")
        assert len(memory) == 1
        assert counters.as_dict() == {"ad/arrive/AD": 1}

    def test_null_tracer_swallows_everything(self):
        NullTracer().emit(0.0, "kernel", "fire", "", seq=1)

    def test_reason_counters_tracer_fans_kinds_out_by_reason(self):
        tracer = ReasonCountersTracer()
        tracer.emit(1.0, "link", "drop", "L", reason="loss")
        tracer.emit(2.0, "link", "drop", "L", reason="burst")
        tracer.emit(3.0, "link", "send", "L")
        assert tracer.as_dict() == {
            "link/drop:burst/L": 1, "link/drop:loss/L": 1, "link/send/L": 1,
        }

    def test_reason_counters_tracer_truncates_to_the_reason_class(self):
        # AD rejection reasons carry per-run detail after the colon; a
        # coverage key must not mint one counter per seqno pair.
        tracer = ReasonCountersTracer()
        tracer.emit(1.0, "ad", "filter", "AD",
                    reason="seqno regression: a.seqno.x=13 <= 13")
        tracer.emit(2.0, "ad", "filter", "AD",
                    reason="seqno regression: a.seqno.x=14 <= 14")
        assert tracer.as_dict() == {"ad/filter:seqno regression/AD": 2}


class TestTraceFiles:
    SPEC = TrialSpec("single", "non-historical", "AD-1", 42, 8)

    def test_write_load_round_trip(self, tmp_path):
        trace = record_trial(self.SPEC)
        path = trace.write(tmp_path / "run.jsonl")
        loaded = load_trace(path)
        assert loaded.schema == SCHEMA_VERSION
        assert loaded.spec == trace.spec
        assert loaded.metrics == trace.metrics
        assert loaded.event_lines() == trace.event_lines()
        # Serialisation is stable: writing the loaded trace reproduces the
        # file byte for byte.
        assert loaded.to_jsonl() == trace.to_jsonl()

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceSchemaError, match="empty"):
            load_trace(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "headless.jsonl"
        path.write_text('{"record":"event","t":0,"stage":"x","kind":"y","node":""}\n')
        with pytest.raises(TraceSchemaError, match="header"):
            load_trace(path)

    def test_wrong_schema_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            '{"record":"header","schema":"repro.trace/99","spec":{}}\n'
        )
        with pytest.raises(TraceSchemaError, match="repro.trace/99"):
            load_trace(path)

    def test_unknown_record_type_rejected(self, tmp_path):
        trace = record_trial(self.SPEC)
        path = trace.write(tmp_path / "run.jsonl")
        path.write_text(path.read_text() + '{"record":"mystery"}\n')
        with pytest.raises(TraceSchemaError, match="mystery"):
            load_trace(path)

    def test_replay_detects_tampering(self, tmp_path):
        trace = record_trial(self.SPEC)
        tampered = RecordedTrace(
            spec=trace.spec,
            events=trace.events[:-1],  # drop the final event
            metrics=trace.metrics,
        )
        result = replay_trace(tampered)
        assert not result.events_identical
        assert not result
        index, recorded, replayed = result.first_divergence
        assert index == len(trace.events) - 1
        assert recorded is None and replayed is not None
        assert "diverge" in result.describe()

    def test_summarize_counts_match_the_events(self):
        trace = record_trial(self.SPEC)
        summary = summarize_trace(trace)
        assert summary["schema"] == SCHEMA_VERSION
        assert summary["events"] == len(trace.events)
        assert summary["spec"]["seed"] == 42
        assert sum(
            count for kinds in summary["stages"].values()
            for count in kinds.values()
        ) == len(trace.events)
        assert summary["duration"] == max(e.time for e in trace.events)
        assert "AD" in summary["nodes"]


class TestRejectionReasons:
    """Every algorithm must explain a rejection without mutating state."""

    ALGORITHMS = ("AD-1", "AD-2", "AD-3", "AD-4")

    def _first_rejection(self, algorithm_name):
        from repro.core.condition import c1

        condition = c1()
        algorithm = make_ad(algorithm_name, condition)
        update = Update("x", 1, 250.0)
        alert = make_alert(condition.name, {"x": [update]}, source="CE1")
        duplicate = make_alert(condition.name, {"x": [update]}, source="CE2")
        assert algorithm.offer(alert)
        accepted = algorithm.offer(duplicate)
        return algorithm, duplicate, accepted

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_duplicate_rejection_has_a_reason(self, name):
        algorithm, duplicate, accepted = self._first_rejection(name)
        if accepted:  # algorithm legitimately displays duplicates
            pytest.skip(f"{name} accepts duplicates from another CE")
        before = (algorithm.output, algorithm.discarded)
        reason = algorithm.rejection_reason(duplicate)
        assert reason and isinstance(reason, str)
        # Explaining must not mutate the algorithm.
        assert (algorithm.output, algorithm.discarded) == before
        assert algorithm.rejection_reason(duplicate) == reason

    def test_default_reason_mentions_the_algorithm(self):
        from repro.displayers.base import ADAlgorithm

        class Opaque(ADAlgorithm):
            name = "opaque"

            def _accept(self, alert):
                return False

        algorithm = Opaque()
        alert = make_alert("c1", {"x": [Update("x", 1, 1.0)]}, source="CE1")
        assert not algorithm.offer(alert)
        assert "opaque" in algorithm.rejection_reason(alert)


class TestReasonStringsPerAlgorithm:
    """The exact reason class each algorithm reports per rejection cause.

    These strings are load-bearing: the fuzzer's coverage signatures and
    the adaptive displayer's policy counters both classify on them, so a
    rewording is a behaviour change, not a cosmetic one.
    """

    def test_base_default_distinguishes_duplicate_from_predicate(self):
        from repro.displayers.base import ADAlgorithm

        class FirstOnly(ADAlgorithm):
            name = "first-only"

            def _accept(self, alert):
                return not self._output

        algorithm = FirstOnly()
        shown = alert_deg1(1)
        assert algorithm.offer(shown)
        # Re-arrival of a displayed identity → the duplicate reason.
        rearrival = alert_deg1(1)
        assert not algorithm.offer(rearrival)
        assert algorithm.rejection_reason(rearrival).startswith(
            "duplicate: history set of"
        )
        # A novel alert the predicate refuses → the predicate reason.
        novel = alert_deg1(2)
        assert not algorithm.offer(novel)
        reason = algorithm.rejection_reason(novel)
        assert reason.startswith("predicate rejection: first-only")

    def test_ad1_reports_duplicates(self):
        ad = AD1()
        assert ad.offer(alert_deg1(1))
        duplicate = alert_deg1(1)
        assert not ad.offer(duplicate)
        assert ad.rejection_reason(duplicate).startswith(
            "duplicate: history set of"
        )

    def test_ad2_reports_seqno_regression(self):
        ad = AD2("x")
        assert ad.offer(alert_deg1(2))
        stale = alert_deg1(1)
        assert not ad.offer(stale)
        reason = ad.rejection_reason(stale)
        assert reason.startswith("seqno regression")
        assert "a.seqno.x=1" in reason and "last displayed 2" in reason

    def test_ad3_reports_duplicate_and_conflict(self):
        ad = AD3("x")
        assert ad.offer(alert_deg2(2, 1))
        duplicate = alert_deg2(2, 1)
        assert not ad.offer(duplicate)
        assert ad.rejection_reason(duplicate).startswith("duplicate")
        # ⟨3,1⟩ claims update 2 missed; the displayed ⟨2,1⟩ received it.
        skipper = alert_deg2(3, 1)
        assert not ad.offer(skipper)
        assert "history conflict in x" in ad.rejection_reason(skipper)

    def test_ad4_delegates_to_the_deciding_constituent(self):
        ad = AD4("x")
        assert ad.offer(alert_deg2(2, 1))
        stale = alert_deg2(1, 0)
        assert not ad.offer(stale)
        assert "seqno regression" in ad.rejection_reason(stale)
        skipper = alert_deg2(3, 1)
        assert not ad.offer(skipper)
        assert "history conflict" in ad.rejection_reason(skipper)

    def test_ad5_reports_inversion_and_all_equal_duplicate(self):
        ad = AD5(("x", "y"))
        assert ad.offer(alert_xy(2, 2))
        inverted = alert_xy(1, 3)
        assert not ad.offer(inverted)
        reason = ad.rejection_reason(inverted)
        assert reason.startswith("seqno inversion in x")
        assert "a.seqno.x=1" in reason
        equal = alert_xy(2, 2)
        assert not ad.offer(equal)
        assert ad.rejection_reason(equal).startswith(
            "duplicate: seqnos equal last displayed"
        )

    def test_ad6_delegates_and_reports_per_variable_conflicts(self):
        def xy_hist(x_seqnos, y_seqnos):
            return make_alert(
                "cm",
                {
                    "x": [Update("x", s, 0.0) for s in x_seqnos],
                    "y": [Update("y", s, 0.0) for s in y_seqnos],
                },
            )

        ad = AD6(("x", "y"))
        assert ad.offer(xy_hist([2, 1], [1]))
        inverted = xy_hist([1], [1])
        assert not ad.offer(inverted)
        assert "seqno inversion in x" in ad.rejection_reason(inverted)
        # ⟨3,1⟩ in x claims update 2 missed after ⟨2,1⟩ received it.
        skipper = xy_hist([3, 1], [1])
        assert not ad.offer(skipper)
        assert "history conflict in x" in ad.rejection_reason(skipper)

    def test_ad6_off_contract_fallback_names_the_acceptance(self):
        ad = AD6(("x", "y"))
        acceptable = alert_xy(1, 1)
        reason = ad.rejection_reason(acceptable)
        assert reason.startswith("no rejection: AD-6 would accept")


class TestTraceCli:
    def test_record_replay_summarize(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert main([
            "trace", "record", "aggressive", "--algorithm", "AD-2",
            "--seed", "11", "--updates", "10", "--out", str(out),
        ]) == 0
        assert out.exists()
        assert "recorded" in capsys.readouterr().out

        assert main(["trace", "replay", str(out)]) == 0
        assert "replay OK" in capsys.readouterr().out

        assert main(["trace", "summarize", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "seed=11" in captured
        assert "metrics:" in captured

    def test_replay_exit_code_on_divergence(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        main(["trace", "record", "lossless", "--seed", "3",
              "--updates", "6", "--out", str(out)])
        capsys.readouterr()
        # Corrupt one event line: replay must fail with exit code 1.
        lines = out.read_text().splitlines()
        event = json.loads(lines[1])
        event["node"] = "bogus"
        lines[1] = json.dumps(event, sort_keys=True, separators=(",", ":"))
        out.write_text("\n".join(lines) + "\n")
        assert main(["trace", "replay", str(out)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_default_output_name(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "record", "lossless", "--seed", "5",
                     "--updates", "6"]) == 0
        expected = tmp_path / "trace_single_lossless_AD-1_seed5.jsonl"
        assert expected.exists()
        assert load_trace(expected).spec["seed"] == 5

    def test_scenario_counters_flag(self, capsys):
        assert main(["scenario", "aggressive", "--seed", "2",
                     "--updates", "8", "--counters"]) == 0
        captured = capsys.readouterr().out
        assert "observability counters:" in captured
        assert "link" in captured
