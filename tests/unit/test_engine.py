"""Unit tests for the trial engine (specs, chunking, executor, plans)."""

import logging

import pytest

from repro.engine import (
    MAX_CHUNKSIZE,
    TrialEngine,
    TrialSpec,
    default_chunksize,
    plan_table,
    resolve_processes,
    tabulate,
)
from repro.workloads.scenarios import ROW_ORDER


class TestResolveProcesses:
    def test_auto_is_at_least_one(self):
        assert resolve_processes("auto") >= 1

    def test_int_passthrough(self):
        assert resolve_processes(3) == 3
        assert resolve_processes("2") == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            resolve_processes(0)
        with pytest.raises(ValueError):
            resolve_processes(-4)


class TestDefaultChunksize:
    def test_sequential_is_one(self):
        assert default_chunksize(1000, 1) == 1

    def test_small_batches_stay_fine_grained(self):
        assert default_chunksize(6, 2) == 1
        assert default_chunksize(16, 4) == 1

    def test_large_batches_are_capped(self):
        # The old len//(4*p) rule would hand out 1250-trial chunks here.
        assert default_chunksize(10_000, 2) == MAX_CHUNKSIZE

    def test_never_zero(self):
        for n in (0, 1, 2, 7, 100):
            for p in (1, 2, 8):
                assert default_chunksize(n, p) >= 1


class TestTrialSpec:
    def test_execute_matches_run_scenario(self):
        from repro.workloads.scenarios import (
            SINGLE_VARIABLE_SCENARIOS,
            run_scenario,
        )

        spec = TrialSpec("single", "aggressive", "AD-1", 99, 12)
        direct = run_scenario(
            SINGLE_VARIABLE_SCENARIOS["aggressive"], "AD-1", 99, n_updates=12
        ).evaluate_properties()
        assert spec.execute().summary == direct.summary

    def test_front_loss_override(self):
        spec = TrialSpec(
            "single", "aggressive", "AD-1", 1, 10, front_loss=0.0
        )
        assert spec.resolve_scenario().front_loss == 0.0
        base = TrialSpec("single", "aggressive", "AD-1", 1, 10)
        assert base.resolve_scenario().front_loss > 0.0


class TestTrialEngine:
    SPECS = [
        TrialSpec("single", "aggressive", "AD-1", seed, 12)
        for seed in range(8)
    ]

    def test_inline_matches_parallel(self):
        inline = TrialEngine(processes=1).run(self.SPECS)
        with TrialEngine(processes=2) as engine:
            pooled = engine.run(self.SPECS)
        assert [r.summary for r in inline] == [r.summary for r in pooled]

    def test_empty_batch(self):
        assert TrialEngine(processes=1).run([]) == []

    def test_pool_persists_across_batches(self):
        with TrialEngine(processes=2) as engine:
            first = engine.run(self.SPECS[:4])
            pool = engine._pool
            second = engine.run(self.SPECS[4:])
            assert engine._pool is pool  # same workers, no respawn
        assert len(first) + len(second) == len(self.SPECS)

    def test_single_spec_runs_inline_with_log(self, caplog):
        engine = TrialEngine(processes=4)
        with caplog.at_level(logging.DEBUG, logger="repro.engine.core"):
            reports = engine.run(self.SPECS[:1])
        assert len(reports) == 1
        assert engine._pool is None  # no pool was spun up
        assert any("inline" in record.message for record in caplog.records)

    def test_explicit_chunksize(self):
        with TrialEngine(processes=2, chunksize=3) as engine:
            reports = engine.run(self.SPECS)
        assert len(reports) == len(self.SPECS)

    def test_invalid_chunksize(self):
        with pytest.raises(ValueError):
            TrialEngine(processes=2, chunksize=0)

    def test_run_tally_counts_all_specs(self):
        tally = TrialEngine(processes=1).run_tally(self.SPECS)
        assert tally.runs == len(self.SPECS)


class TestSingleSpecFallback:
    """The single-spec inline fallback must be a pure optimization: every
    execution path — processes=1, the inline fallback of a multi-process
    engine, and a genuine pooled batch — yields identical reports and
    identical folded tallies for the same spec."""

    SPEC = TrialSpec("single", "conservative", "AD-2", 7331, 12)

    def test_fallback_report_identical_to_sequential_and_pooled(self):
        sequential = TrialEngine(processes=1).run([self.SPEC])[0]
        fallback = TrialEngine(processes=4).run([self.SPEC])[0]
        with TrialEngine(processes=2) as engine:
            # Pad the batch so it actually crosses the pool, then pick the
            # padded copy of our spec back out.
            pad = TrialSpec("single", "lossless", "pass", 1, 4)
            pooled = engine.run([self.SPEC, pad])[0]
        assert fallback == sequential
        assert pooled == sequential

    def test_fallback_tally_identical_to_pooled_tally(self):
        inline_tally = TrialEngine(processes=1).run_tally([self.SPEC])
        fallback_tally = TrialEngine(processes=4).run_tally([self.SPEC])
        assert fallback_tally == inline_tally
        assert fallback_tally.runs == 1

    def test_fallback_preserves_counters(self):
        traced = TrialSpec(
            "single", "conservative", "AD-2", 7331, 12, collect_counters=True
        )
        inline_tally = TrialEngine(processes=1).run_tally([traced])
        fallback_tally = TrialEngine(processes=4).run_tally([traced])
        assert fallback_tally.counters == inline_tally.counters
        assert fallback_tally.counters  # tracing was actually on
        # Verdicts are unaffected by tracing (counters ride along only).
        untraced_tally = TrialEngine(processes=1).run_tally([self.SPEC])
        assert fallback_tally.cell() == untraced_tally.cell()


class TestCountersAggregation:
    def test_run_tally_sums_counters_across_pooled_trials(self):
        specs = [
            TrialSpec(
                "single", "aggressive", "AD-1", seed, 10, collect_counters=True
            )
            for seed in range(6)
        ]
        inline = TrialEngine(processes=1).run_tally(specs)
        with TrialEngine(processes=2) as engine:
            pooled = engine.run_tally(specs)
        assert pooled.counters == inline.counters
        # Sums must equal the per-trial counters added up by hand.
        per_trial = [spec.execute().counters for spec in specs]
        expected: dict[str, int] = {}
        for counters in per_trial:
            for key, count in counters.items():
                expected[key] = expected.get(key, 0) + count
        assert pooled.counters == expected
        stages = pooled.stage_counters()
        assert set(stages) <= {"kernel", "link", "ce", "ad"}
        assert stages["ad"]["arrive"] == (
            stages["ad"].get("display", 0) + stages["ad"].get("filter", 0)
        )


class TestTablePlan:
    def test_plan_covers_all_rows(self):
        plan = plan_table("table3", trials=2, completeness_trials=3)
        assert len(plan.specs) == 4 * (2 + 3)
        assert {spec.row for spec in plan.specs} == set(ROW_ORDER)

    def test_single_variable_tables_skip_completeness_batch(self):
        plan = plan_table("table1", trials=2)
        assert len(plan.specs) == 4 * 2

    def test_tabulate_rejects_mismatched_reports(self):
        plan = plan_table("table1", trials=2)
        with pytest.raises(ValueError):
            tabulate(plan, [])


class TestGoldenEquivalence:
    """build_table_parallel over a 4-worker pool must be bit-identical to
    the sequential build_table — same tallies, witnesses and seeds — for
    every table the paper reports."""

    TABLE_IDS = ("table1", "table2", "table3", "ad3", "ad4", "ad6")

    def test_parallel_matches_sequential_everywhere(self):
        from repro.analysis.parallel import build_table_parallel
        from repro.analysis.tables import build_table

        kwargs = dict(
            trials=3,
            n_updates=10,
            base_seed=4242,
            completeness_trials=3,
            completeness_n_updates=5,
        )
        with TrialEngine(processes=4) as engine:
            for table_id in self.TABLE_IDS:
                sequential = build_table(table_id, **kwargs)
                parallel = build_table_parallel(
                    table_id, engine=engine, **kwargs
                )
                # PropertyTally is a plain dataclass: == compares every
                # counter, first-violation seed and witness string.
                assert parallel.tallies == sequential.tallies, table_id
                assert (
                    parallel.measured_grid() == sequential.measured_grid()
                ), table_id


class TestSweepEquivalence:
    def test_engine_sweep_matches_inline(self):
        from repro.analysis.sweeps import loss_sweep
        from repro.workloads.scenarios import SINGLE_VARIABLE_SCENARIOS

        scenario = SINGLE_VARIABLE_SCENARIOS["aggressive"]
        inline = loss_sweep(scenario, "AD-1", (0.0, 0.3), trials=4, n_updates=10)
        with TrialEngine(processes=2) as engine:
            pooled = loss_sweep(
                scenario, "AD-1", (0.0, 0.3), trials=4, n_updates=10,
                engine=engine,
            )
        assert inline == pooled


class TestCompletenessCeiling:
    def test_n_updates_8_fully_decided(self):
        # The pruned DFS lifts the old enumeration ceiling of 5 readings
        # per variable: at 8 readings every short-batch completeness check
        # must reach a definite verdict (nothing undecided, nothing
        # skipped by the interleaving-count guard).
        from repro.analysis.tables import build_table

        result = build_table(
            "table3",
            trials=2,
            n_updates=12,
            completeness_trials=5,
            completeness_n_updates=8,
        )
        for row, tally in result.tallies.items():
            assert tally.completeness_undecided == 0, row
            assert tally.completeness_checked >= 5, row
