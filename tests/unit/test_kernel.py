"""Unit tests for the discrete-event kernel."""

import pytest

from repro.observability import MemoryTracer
from repro.simulation.kernel import Kernel, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(2.0, lambda: fired.append("b"))
        kernel.schedule(1.0, lambda: fired.append("a"))
        kernel.schedule(3.0, lambda: fired.append("c"))
        kernel.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        kernel = Kernel()
        fired = []
        for label in "abc":
            kernel.schedule(1.0, lambda l=label: fired.append(l))
        kernel.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances(self):
        kernel = Kernel()
        seen = []
        kernel.schedule(5.0, lambda: seen.append(kernel.now))
        kernel.run()
        assert seen == [5.0]
        assert kernel.now == 5.0

    def test_schedule_at_absolute_time(self):
        kernel = Kernel()
        fired = []
        kernel.schedule_at(4.0, lambda: fired.append(kernel.now))
        kernel.run()
        assert fired == [4.0]

    def test_negative_delay_rejected(self):
        kernel = Kernel()
        with pytest.raises(SimulationError):
            kernel.schedule(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        kernel = Kernel()
        kernel.schedule(5.0, lambda: None)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.schedule_at(1.0, lambda: None)

    def test_events_can_schedule_events(self):
        kernel = Kernel()
        fired = []

        def first():
            fired.append(("first", kernel.now))
            kernel.schedule(1.0, lambda: fired.append(("second", kernel.now)))

        kernel.schedule(1.0, first)
        kernel.run()
        assert fired == [("first", 1.0), ("second", 2.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        kernel = Kernel()
        fired = []
        event = kernel.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        kernel.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        kernel = Kernel()
        event = kernel.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        kernel.run()

    def test_run_until_leaves_cancelled_events_beyond_horizon(self):
        # A cancelled event past `until` belongs to a later run() call;
        # run(until=...) must stop at the horizon without popping it.
        kernel = Kernel()
        fired = []
        kernel.schedule(1.0, lambda: fired.append(1))
        event = kernel.schedule(10.0, lambda: fired.append(10))
        event.cancel()
        kernel.schedule(12.0, lambda: fired.append(12))
        kernel.run(until=5.0)
        assert fired == [1]
        assert kernel.pending == 2  # cancelled 10.0 event still queued
        kernel.run()
        assert fired == [1, 12]

    def test_mass_cancellation_compacts_large_queue(self):
        kernel = Kernel()
        fired = []
        events = [
            kernel.schedule(float(i + 1), lambda: fired.append(1))
            for i in range(3000)
        ]
        for event in events[:2900]:
            event.cancel()
        # Compaction triggers on a later push once enough entries are dead.
        for i in range(1200):
            kernel.schedule(5000.0 + i, lambda: fired.append(2))
        assert kernel.pending < 3000 + 1200
        kernel.run()
        assert fired.count(1) == 100
        assert fired.count(2) == 1200


class TestRunControls:
    def test_run_until(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(1.0, lambda: fired.append(1))
        kernel.schedule(10.0, lambda: fired.append(10))
        kernel.run(until=5.0)
        assert fired == [1]
        assert kernel.now == 5.0
        kernel.run()
        assert fired == [1, 10]

    def test_max_events_guards_runaway(self):
        kernel = Kernel()

        def reschedule():
            kernel.schedule(0.0, reschedule)

        kernel.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            kernel.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert Kernel().step() is False

    def test_step_executes_one_event(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(1.0, lambda: fired.append(1))
        kernel.schedule(2.0, lambda: fired.append(2))
        assert kernel.step() is True
        assert fired == [1]

    def test_processed_counter(self):
        kernel = Kernel()
        kernel.schedule(1.0, lambda: None)
        kernel.schedule(2.0, lambda: None)
        kernel.run()
        assert kernel.processed == 2

    def test_pending(self):
        kernel = Kernel()
        kernel.schedule(1.0, lambda: None)
        assert kernel.pending == 1


class TestRunUntilHorizon:
    def test_event_exactly_on_the_horizon_fires(self):
        # run(until=t) stops at events *after* t; one sitting exactly on
        # the horizon belongs to this run and must fire.
        kernel = Kernel()
        fired = []
        kernel.schedule_at(5.0, lambda: fired.append(kernel.now))
        kernel.schedule_at(5.0 + 1e-9, lambda: fired.append(-1.0))
        kernel.run(until=5.0)
        assert fired == [5.0]
        assert kernel.now == 5.0
        kernel.run()
        assert fired == [5.0, -1.0]

    def test_tied_events_on_the_horizon_all_fire(self):
        kernel = Kernel()
        fired = []
        for label in "abc":
            kernel.schedule_at(3.0, lambda l=label: fired.append(l))
        kernel.run(until=3.0)
        assert fired == ["a", "b", "c"]


class TestTracing:
    def test_schedule_fire_events_in_causal_order(self):
        tracer = MemoryTracer()
        kernel = Kernel(tracer=tracer)
        kernel.schedule(1.0, lambda: None, note="only")
        kernel.run()
        kinds = [(e.kind, e.data.get("seq")) for e in tracer.events]
        assert kinds == [("schedule", 0), ("fire", 0)]
        assert tracer.events[0].time == 0.0  # emitted at scheduling time
        assert tracer.events[1].time == 1.0  # emitted at fire time

    def test_scheduling_from_inside_a_fired_callback(self):
        # A callback that schedules must be observed as fire(parent),
        # schedule(child) stamped with the parent's fire time, fire(child).
        tracer = MemoryTracer()
        kernel = Kernel(tracer=tracer)
        fired = []

        def parent():
            fired.append(("parent", kernel.now))
            kernel.schedule(2.0, lambda: fired.append(("child", kernel.now)),
                            note="child")

        kernel.schedule(1.0, parent, note="parent")
        kernel.run()
        assert fired == [("parent", 1.0), ("child", 3.0)]
        trail = [(e.kind, e.time, e.data.get("note")) for e in tracer.events]
        assert trail == [
            ("schedule", 0.0, "parent"),
            ("fire", 1.0, "parent"),
            ("schedule", 1.0, "child"),
            ("fire", 3.0, "child"),
        ]
        # The child's schedule event records its future fire time.
        assert tracer.events[2].data["at"] == 3.0

    def test_cancel_traced_exactly_once(self):
        tracer = MemoryTracer()
        kernel = Kernel(tracer=tracer)
        event = kernel.schedule(1.0, lambda: None, note="doomed")
        event.cancel()
        event.cancel()  # idempotent: no second cancel event
        kernel.run()
        kinds = [e.kind for e in tracer.events]
        assert kinds == ["schedule", "cancel"]
        assert tracer.events[1].data == {"seq": 0, "note": "doomed"}

    def test_cancelled_event_never_fires_a_trace(self):
        tracer = MemoryTracer()
        kernel = Kernel(tracer=tracer)
        kernel.schedule(1.0, lambda: None).cancel()
        kernel.schedule(2.0, lambda: None)
        kernel.run()
        fires = [e for e in tracer.events if e.kind == "fire"]
        assert [e.data["seq"] for e in fires] == [1]

    def test_compaction_mid_run_is_traced_and_preserves_survivors(self):
        # Mass-cancel most of a big queue, then let a running callback
        # push enough new events to cross the compaction threshold while
        # the kernel is mid-run.  The rebuild must be observed as a
        # kernel/compact event and must not lose any live event.
        tracer = MemoryTracer()
        kernel = Kernel(tracer=tracer)
        fired = []
        events = [
            kernel.schedule(10.0 + i, lambda: fired.append("old"))
            for i in range(1500)
        ]
        for event in events[50:]:
            event.cancel()

        def burst():
            for i in range(1100):
                kernel.schedule(5000.0 + i, lambda: fired.append("new"))

        kernel.schedule_at(1.0, burst)
        kernel.run()
        compacts = [e for e in tracer.events if e.kind == "compact"]
        assert compacts, "compaction never triggered mid-run"
        for event in compacts:
            assert event.data["before"] > event.data["after"]
        assert fired.count("old") == 50
        assert fired.count("new") == 1100

    def test_traced_and_untraced_runs_fire_identically(self):
        def build(tracer):
            kernel = Kernel(tracer=tracer)
            fired = []
            kernel.schedule(2.0, lambda: fired.append("x"))
            event = kernel.schedule(1.0, lambda: fired.append("y"))
            event.cancel()
            kernel.schedule(3.0, lambda: fired.append("z"))
            kernel.run()
            return fired

        assert build(None) == build(MemoryTracer()) == ["x", "z"]


class TestDeterminism:
    def test_identical_schedules_identical_traces(self):
        def build():
            kernel = Kernel()
            fired = []
            kernel.schedule(2.0, lambda: fired.append("x"))
            kernel.schedule(2.0, lambda: fired.append("y"))
            kernel.schedule(1.0, lambda: fired.append("z"))
            kernel.run()
            return fired

        assert build() == build()
