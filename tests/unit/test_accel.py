"""Unit tests for the optional-acceleration shims (:mod:`repro.accel`).

numpy is an optional extra; both code paths must agree.  The fallback
path is forced by flipping ``HAVE_NUMPY`` (the helpers branch on it at
call time), so these tests exercise it even in environments where numpy
is installed — the converse (numpy path in a numpy-less environment) is
vacuously absent.
"""

import statistics

import pytest

from repro import accel


@pytest.fixture
def fallback(monkeypatch):
    monkeypatch.setattr(accel, "HAVE_NUMPY", False)


VALUES = [3.25, 1.5, 9.75, 4.5, 2.0, 8.5, 5.125]


def test_mean_matches_statistics(fallback):
    assert accel.mean(VALUES) == pytest.approx(statistics.fmean(VALUES))
    with pytest.raises(ValueError):
        accel.mean([])


def test_median_matches_statistics(fallback):
    assert accel.median(VALUES) == pytest.approx(statistics.median(VALUES))
    assert accel.median([1.0, 2.0]) == pytest.approx(1.5)


def test_percentile_linear_interpolation(fallback):
    # numpy's default method on [10, 20, 30, 40]: rank = q/100 * 3.
    data = [40.0, 10.0, 30.0, 20.0]
    assert accel.percentile(data, 0) == 10.0
    assert accel.percentile(data, 100) == 40.0
    assert accel.percentile(data, 50) == pytest.approx(25.0)
    assert accel.percentile(data, 25) == pytest.approx(17.5)
    assert accel.percentile(data, 95) == pytest.approx(38.5)
    assert accel.percentile([7.0], 95) == 7.0


def test_percentile_validation(fallback):
    with pytest.raises(ValueError):
        accel.percentile([], 50)
    with pytest.raises(ValueError):
        accel.percentile(VALUES, 101)


@pytest.mark.skipif(not accel.HAVE_NUMPY, reason="numpy not installed")
def test_fallback_agrees_with_numpy_bit_for_bit(monkeypatch):
    import numpy as np

    numpy_results = [
        (q, float(np.percentile(np.asarray(VALUES), q)))
        for q in (0, 13.7, 25, 50, 77.3, 95, 100)
    ]
    monkeypatch.setattr(accel, "HAVE_NUMPY", False)
    for q, expected in numpy_results:
        assert accel.percentile(VALUES, q) == expected
    assert accel.mean(VALUES) == float(np.mean(VALUES))
    assert accel.median(VALUES) == float(np.median(VALUES))


@pytest.mark.parametrize("force_fallback", [False, True])
def test_first_inversion(monkeypatch, force_fallback):
    if force_fallback:
        monkeypatch.setattr(accel, "HAVE_NUMPY", False)
    assert accel.first_inversion([]) is None
    assert accel.first_inversion([5]) is None
    assert accel.first_inversion([1, 2, 2, 3]) is None
    assert accel.first_inversion([1, 3, 2, 5]) == 2
    assert accel.first_inversion([2, 1]) == 1
    assert accel.first_inversion([1.5, 1.25, 9.0]) == 1
    # Non-numeric comparables always take the scalar path.
    assert accel.first_inversion(["a", "c", "b"]) == 2


def test_as_float_array_is_indexable(fallback):
    container = accel.as_float_array([1.0, 2.5])
    assert container[1] == 2.5
    assert len(container) == 2


def test_latency_stats_on_the_fallback(fallback):
    """The one in-tree numpy consumer must work without numpy."""
    from repro.analysis.latency import NotificationLatency, latency_stats

    stats = latency_stats(
        [
            NotificationLatency(("c", 1), 0.0, 4.0),
            NotificationLatency(("c", 2), 1.0, 9.0),
            NotificationLatency(("c", 3), 2.0, None),
        ]
    )
    assert stats.expected == 3
    assert stats.delivered == 2
    assert stats.mean == pytest.approx(6.0)
    assert stats.median == pytest.approx(6.0)
    assert stats.p95 == pytest.approx(7.8)
    assert stats.miss_fraction == pytest.approx(1 / 3)
