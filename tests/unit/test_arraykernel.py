"""Unit tests for the struct-of-arrays trial executor.

The broad random equivalence argument lives in
``tests/property/test_prop_kernel_differential.py``; here are the pinned
edge cases that exercise specific arraykernel code paths — the inline
AD-5 scan and its caller-supplied-algorithm bypass, the evaluator
fallback for non-expression conditions, the adversarial phase-1 path
(stateful loss chains, duplication), the condition compiler's cache, and
the kernel-knob plumbing itself.
"""

import pytest

from repro.components.system import SystemConfig, run_system
from repro.core.condition import (
    ExpressionCondition,
    PredicateCondition,
    c2,
    c3,
    cm,
)
from repro.core.expressions import H
from repro.displayers.registry import make_ad
from repro.faults.model import (
    DuplicationAdversary,
    GilbertElliottLoss,
    GilbertElliottParams,
)
from repro.simulation.arraykernel import (
    _CLOSURE_CACHE,
    compile_condition,
    run_system_array,
)
from repro.simulation.failures import CrashSchedule
from repro.simulation.rng import RandomStreams
from repro.workloads.generators import rising_runs, threshold_crossers

_RUN_FIELDS = (
    "sent", "sent_log", "received", "ce_alerts", "ad_arrivals",
    "ad_arrival_times", "displayed", "filtered", "missed_while_down",
    "dm_suppressed",
)


def _workload(seed: int, n: int = 20, variables: tuple[str, ...] = ("x",)):
    streams = RandomStreams(seed)
    generators = {"x": rising_runs, "y": threshold_crossers}
    return {
        var: generators[var](streams.stream(f"workload/{var}"), n)
        for var in variables
    }


def _assert_kernels_agree(condition, workload, make_config, seed, **kwargs):
    object_run = run_system(
        condition, workload, make_config(), seed=seed, kernel="object",
        **kwargs,
    )
    array_run = run_system(
        condition, workload, make_config(), seed=seed, kernel="array",
        **kwargs,
    )
    for field in _RUN_FIELDS:
        assert getattr(object_run, field) == getattr(array_run, field), field
    return object_run, array_run


def test_unknown_kernel_is_rejected():
    with pytest.raises(ValueError, match="unknown kernel"):
        run_system(
            c2(), _workload(0), SystemConfig(replication=1), kernel="turbo"
        )


def test_replication_one_and_three():
    for replication in (1, 3):
        _assert_kernels_agree(
            c3(),
            _workload(11),
            lambda replication=replication: SystemConfig(
                replication=replication, ad_algorithm="AD-4", front_loss=0.3
            ),
            seed=11,
        )


def test_caller_supplied_algorithm_bypasses_the_inline_scan():
    """A caller-supplied AD instance has observable state (its output and
    discard logs), so the array kernel must drive the *real* ``offer()``
    even for algorithms it knows how to inline — and leave the two
    instances in identical end states."""
    condition = cm()
    workload = _workload(5, n=10, variables=("x", "y"))
    algorithms = []

    def run_one(kernel):
        algorithm = make_ad("AD-5", condition)
        algorithms.append(algorithm)
        return run_system(
            condition, workload,
            SystemConfig(replication=2, front_loss=0.3),
            seed=5, algorithm=algorithm, kernel=kernel,
        )

    object_run, array_run = run_one("object"), run_one("array")
    for field in _RUN_FIELDS:
        assert getattr(object_run, field) == getattr(array_run, field), field
    object_algorithm, array_algorithm = algorithms
    assert object_algorithm.output == array_algorithm.output
    assert object_algorithm.discarded == array_algorithm.discarded


def test_predicate_condition_uses_the_evaluator_fallback():
    """PredicateCondition cannot be compiled to a closure; the array
    kernel must fall back to the real ConditionEvaluator (and, with
    AD-5, to seqno recomputation instead of carried tuples)."""
    condition = PredicateCondition(
        "hot", {"x": 1}, lambda h: h["x"][0].value > 1050.0
    )
    assert compile_condition(condition) is None
    _assert_kernels_agree(
        condition,
        _workload(7),
        lambda: SystemConfig(
            replication=2, ad_algorithm="AD-5", front_loss=0.3
        ),
        seed=7,
    )


def test_adversarial_faults_take_the_merged_path():
    """Stateful Gilbert-Elliott loss shares one chain across links and
    duplication reshapes delivery, forcing the non-batched phase-1 body;
    CE and DM crash windows ride along."""
    def make_config():
        return SystemConfig(
            replication=2,
            ad_algorithm="AD-4",
            front_loss_model=GilbertElliottLoss(
                GilbertElliottParams(0.2, 0.4, 0.05, 0.7)
            ),
            front_duplication=DuplicationAdversary(
                duplicate_prob=0.3, max_copies=2
            ),
            crash_schedules={0: CrashSchedule(windows=((30.0, 80.0),))},
            dm_crash_schedules={"x": CrashSchedule(windows=((90.0, 120.0),))},
        )

    _assert_kernels_agree(c2(), _workload(13), make_config, seed=13)


def test_compile_condition_caches_by_cache_key():
    condition = ExpressionCondition(
        "risen", (H.x[0].value - H.x[-1].value > 120.0), conservative=True
    )
    closure = compile_condition(condition)
    assert closure is not None
    assert _CLOSURE_CACHE[condition.cache_key()] is closure
    # A value-equal condition object reuses the cached closure.
    twin = ExpressionCondition(
        "risen", (H.x[0].value - H.x[-1].value > 120.0), conservative=True
    )
    assert compile_condition(twin) is closure


def test_compiled_closure_matches_condition_evaluate():
    condition = ExpressionCondition(
        "risen", (H.x[0].value - H.x[-1].value > 120.0), conservative=True
    )
    closure = compile_condition(condition)
    run = run_system_array(
        condition,
        _workload(3),
        SystemConfig(replication=1, front_loss=0.3),
        seed=3,
    )
    # Replay every CE decision through the closure on the received
    # history suffixes: each generated alert corresponds to a True.
    assert run.ce_alerts  # the workload must actually trigger alerts
    for stream, alerts in zip(run.received, run.ce_alerts):
        fired = 0
        history: list = []
        for update in stream:
            history.insert(0, update)
            if len(history) >= 2 and closure(history[:2]):
                fired += 1
        assert fired == len(alerts)


def test_old_trace_headers_without_kernel_field_still_replay():
    """Traces recorded before the kernel knob existed have no ``kernel``
    key in their header; they must deserialize (to the array default)
    and replay bit-identically."""
    from repro.engine.spec import TrialSpec
    from repro.observability import record_trial, replay_trace

    trace = record_trial(TrialSpec("single", "conservative", "AD-3", 9, 8))
    stripped_spec = dict(trace.spec)
    assert stripped_spec.pop("kernel") == "array"
    legacy_trace = type(trace)(
        spec=stripped_spec, events=trace.events, metrics=trace.metrics
    )
    result = replay_trace(legacy_trace)
    assert result.identical, result.describe()
