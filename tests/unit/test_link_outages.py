"""Unit tests for front-link outages and per-CE loss heterogeneity."""

import random

import pytest

from repro.components.system import SystemConfig, run_system
from repro.core.condition import c1
from repro.simulation.failures import CrashSchedule
from repro.simulation.kernel import Kernel
from repro.simulation.network import FixedDelay, LossyFifoLink


class TestLinkOutage:
    def _link(self, kernel, received, schedule):
        return LossyFifoLink(
            kernel,
            received.append,
            FixedDelay(1.0),
            random.Random(0),
            loss_prob=0.0,
            outage_schedule=schedule,
        )

    def test_messages_lost_during_outage(self):
        kernel = Kernel()
        received = []
        link = self._link(kernel, received, CrashSchedule(((5.0, 15.0),)))
        for time in (0.0, 10.0, 20.0):
            kernel.schedule_at(time, lambda t=time: link.send(t))
        kernel.run()
        assert received == [0.0, 20.0]
        assert link.lost_to_outage == 1

    def test_no_outage_schedule_never_drops(self):
        kernel = Kernel()
        received = []
        link = self._link(kernel, received, None)
        for time in (0.0, 10.0):
            kernel.schedule_at(time, lambda t=time: link.send(t))
        kernel.run()
        assert len(received) == 2
        assert link.lost_to_outage == 0

    def test_outage_independent_of_random_loss(self):
        kernel = Kernel()
        received = []
        link = LossyFifoLink(
            kernel,
            received.append,
            FixedDelay(1.0),
            random.Random(0),
            loss_prob=1.0,  # everything randomly lost anyway
            outage_schedule=CrashSchedule(((0.0, 100.0),)),
        )
        link.send("m")
        kernel.run()
        assert link.lost_to_outage == 1
        assert link.lost == 0  # outage drop happens first


class TestSystemIntegration:
    WORKLOAD = {"x": [(t * 10.0, 3100.0) for t in range(10)]}

    def test_front_outage_starves_one_ce(self):
        config = SystemConfig(
            replication=2,
            front_loss=0.0,
            front_outages={0: CrashSchedule(((0.0, 1000.0),))},
        )
        run = run_system(c1(), self.WORKLOAD, config, seed=1)
        assert len(run.received[0]) == 0
        assert len(run.received[1]) == 10

    def test_partial_outage_window(self):
        config = SystemConfig(
            replication=2,
            front_loss=0.0,
            front_outages={0: CrashSchedule(((25.0, 55.0),))},
        )
        run = run_system(c1(), self.WORKLOAD, config, seed=1)
        # Readings at t=30, 40, 50 are lost to CE1 (sent during outage).
        assert [u.seqno for u in run.received[0]] == [1, 2, 3, 7, 8, 9, 10]

    def test_per_ce_loss_rates(self):
        workload = {"x": [(t * 10.0, 3100.0) for t in range(200)]}
        config = SystemConfig(
            replication=2,
            front_loss=0.0,
            front_loss_per_ce={1: 0.5},
        )
        run = run_system(c1(), workload, config, seed=3)
        assert len(run.received[0]) == 200       # CE1 lossless
        assert 60 <= len(run.received[1]) <= 140  # CE2 ~50%

    def test_per_ce_loss_validated(self):
        with pytest.raises(ValueError):
            SystemConfig(front_loss_per_ce={0: 1.5})

    def test_replication_masks_outage(self):
        # With one CE's network down for half the run, the second CE keeps
        # the displayed alert set complete (Theorem 2 still applies).
        config = SystemConfig(
            replication=2,
            front_loss=0.0,
            front_outages={0: CrashSchedule(((0.0, 45.0),))},
        )
        run = run_system(c1(), self.WORKLOAD, config, seed=1)
        report = run.evaluate_properties()
        assert report.complete
        assert len({a.seqno("x") for a in run.displayed}) == 10
