"""Unit tests for alerts and alert-sequence helpers."""

from repro.core.alert import (
    Alert,
    alert_identity_set,
    make_alert,
    project_alert_seqnos,
)
from repro.core.update import Update


def deg2(head, prev, var="x", cond="c", source=""):
    return make_alert(
        cond, {var: [Update(var, head, 0.0), Update(var, prev, 0.0)]}, source
    )


class TestAlert:
    def test_seqno_is_history_head(self):
        alert = deg2(3, 1)
        assert alert.seqno("x") == 3

    def test_variables(self):
        alert = make_alert(
            "cm", {"x": [Update("x", 2)], "y": [Update("y", 1)]}
        )
        assert alert.variables == ("x", "y")

    def test_identity_equal_same_histories(self):
        assert deg2(3, 1) == deg2(3, 1)
        assert deg2(3, 1).identity() == deg2(3, 1).identity()

    def test_identity_differs_on_history(self):
        # §3: a1 on (2x, 3x) vs a2 on (1x, 3x) are NOT duplicates.
        assert deg2(3, 2) != deg2(3, 1)

    def test_source_not_part_of_identity(self):
        assert deg2(3, 1, source="CE1") == deg2(3, 1, source="CE2")

    def test_condname_part_of_identity(self):
        assert deg2(3, 1, cond="a").identity() != deg2(3, 1, cond="b").identity()

    def test_with_source(self):
        alert = deg2(3, 1).with_source("CE9")
        assert alert.source == "CE9"

    def test_shorthand_single_variable(self):
        assert deg2(3, 1).shorthand() == "a(3x,1x)"

    def test_shorthand_multi_variable(self):
        alert = make_alert(
            "cm", {"x": [Update("x", 2)], "y": [Update("y", 1)]}
        )
        assert alert.shorthand() == "a(2x; 1y)"

    def test_hashable(self):
        assert len({deg2(3, 1), deg2(3, 1)}) == 1


class TestHelpers:
    def test_alert_identity_set(self):
        alerts = [deg2(3, 1), deg2(3, 1), deg2(4, 3)]
        assert len(alert_identity_set(alerts)) == 2

    def test_project_alert_seqnos(self):
        alerts = [deg2(2, 1), deg2(5, 2), deg2(3, 2)]
        assert project_alert_seqnos(alerts, "x") == [2, 5, 3]

    def test_project_empty(self):
        assert project_alert_seqnos([], "x") == []
