"""Unit tests for alert wire encodings (§2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.update import Update
from repro.core.wire import (
    AlertEncoding,
    ChecksumAD1,
    checksum_histories,
    encode_alert,
    minimum_encoding,
)
from repro.displayers.ad1 import AD1
from tests.conftest import alert_deg1, alert_deg2, alert_xy


class TestEncodeAlert:
    def test_full_contains_values(self):
        wire = encode_alert(alert_deg2(3, 1), AlertEncoding.FULL)
        assert wire.payload == (("x", ((3, 0.0), (1, 0.0))),)

    def test_seqnos_drop_values(self):
        wire = encode_alert(alert_deg2(3, 1), AlertEncoding.SEQNOS)
        assert wire.payload == (("x", (3, 1)),)

    def test_heads_keep_only_head(self):
        wire = encode_alert(alert_deg2(3, 1), AlertEncoding.HEADS)
        assert wire.payload == (("x", 3),)

    def test_checksum_is_fixed_size(self):
        wire1 = encode_alert(alert_deg2(3, 1), AlertEncoding.CHECKSUM)
        wire2 = encode_alert(alert_deg2(400, 1), AlertEncoding.CHECKSUM)
        assert wire1.size_bytes == wire2.size_bytes

    def test_sizes_strictly_shrink(self):
        alert = alert_deg2(7, 5)
        sizes = [
            encode_alert(alert, enc).size_bytes
            for enc in (
                AlertEncoding.FULL,
                AlertEncoding.SEQNOS,
                AlertEncoding.HEADS,
                AlertEncoding.CHECKSUM,
            )
        ]
        assert sizes == sorted(sizes, reverse=True)
        assert len(set(sizes)) == 4

    def test_multi_variable_sizes(self):
        wire = encode_alert(alert_xy(2, 3), AlertEncoding.HEADS)
        assert wire.payload == (("x", 2), ("y", 3))

    def test_full_size_scales_with_degree(self):
        deg2 = encode_alert(alert_deg2(3, 1), AlertEncoding.FULL).size_bytes
        deg1 = encode_alert(alert_deg1(3), AlertEncoding.FULL).size_bytes
        assert deg2 > deg1


class TestChecksum:
    def test_deterministic(self):
        assert checksum_histories(alert_deg2(3, 1)) == checksum_histories(
            alert_deg2(3, 1)
        )

    def test_distinguishes_histories(self):
        assert checksum_histories(alert_deg2(3, 1)) != checksum_histories(
            alert_deg2(3, 2)
        )

    def test_ignores_values(self):
        from repro.core.alert import make_alert

        a1 = make_alert("c", {"x": [Update("x", 3, 1.0)]})
        a2 = make_alert("c", {"x": [Update("x", 3, 2.0)]})
        assert checksum_histories(a1) == checksum_histories(a2)

    def test_condname_included(self):
        from repro.core.alert import make_alert

        a1 = make_alert("a", {"x": [Update("x", 3)]})
        a2 = make_alert("b", {"x": [Update("x", 3)]})
        assert checksum_histories(a1) != checksum_histories(a2)


class TestMinimumEncoding:
    def test_known_algorithms(self):
        assert minimum_encoding("AD-1") is AlertEncoding.CHECKSUM
        assert minimum_encoding("AD-2") is AlertEncoding.HEADS
        assert minimum_encoding("AD-3") is AlertEncoding.SEQNOS
        assert minimum_encoding("AD-5") is AlertEncoding.HEADS
        assert minimum_encoding("AD-6") is AlertEncoding.SEQNOS

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            minimum_encoding("AD-9")


@st.composite
def alert_streams(draw):
    pairs = draw(
        st.lists(
            st.tuples(st.integers(2, 12), st.integers(1, 11)).filter(
                lambda p: p[0] > p[1]
            ),
            max_size=20,
        )
    )
    return [alert_deg2(a, b) for a, b in pairs]


class TestChecksumAD1:
    @given(alert_streams())
    def test_identical_decisions_to_ad1(self, stream):
        full = AD1()
        digest = ChecksumAD1()
        for alert in stream:
            assert full.offer(alert) == digest.offer(alert)

    def test_fresh(self):
        ad = ChecksumAD1()
        ad.offer(alert_deg1(1))
        assert ad.fresh().offer(alert_deg1(1)) is True


# -- length-prefixed frame codec ---------------------------------------------

from repro.core.wire import (  # noqa: E402
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    encode_frame,
    iter_frames,
)


class TestFrameCodec:
    def test_round_trip(self):
        payloads = [b"hello", b"", b"x" * 1000]
        stream = b"".join(encode_frame(p) for p in payloads)
        assert list(iter_frames(stream)) == payloads

    def test_zero_length_payload_is_legal(self):
        frame = encode_frame(b"")
        assert frame == b"\x00\x00\x00\x00"
        assert list(iter_frames(frame)) == [b""]

    def test_byte_at_a_time_decode(self):
        payloads = [b"abc", b"", b"defgh"]
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i:i + 1]))
        decoder.close()
        assert out == payloads
        assert decoder.frames_decoded == 3
        assert decoder.buffered == 0

    def test_multiple_frames_in_one_chunk(self):
        stream = encode_frame(b"a") + encode_frame(b"bb") + encode_frame(b"ccc")
        decoder = FrameDecoder()
        assert decoder.feed(stream) == [b"a", b"bb", b"ccc"]
        decoder.close()

    def test_frame_split_across_chunks(self):
        frame = encode_frame(b"payload")
        decoder = FrameDecoder()
        assert decoder.feed(frame[:6]) == []
        assert decoder.buffered == 6
        assert decoder.feed(frame[6:]) == [b"payload"]

    def test_truncated_stream_raises_on_close(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"whole") + encode_frame(b"cut")[:5])
        with pytest.raises(FrameError, match="truncated mid-frame"):
            decoder.close()

    def test_truncated_header_raises_on_close(self):
        decoder = FrameDecoder()
        decoder.feed(b"\x00\x00")
        with pytest.raises(FrameError, match="truncated"):
            decoder.close()

    def test_iter_frames_rejects_truncation(self):
        with pytest.raises(FrameError):
            list(iter_frames(encode_frame(b"ok")[:-1]))

    def test_oversized_payload_rejected_at_encode(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame(b"x" * 11, max_bytes=10)

    def test_oversized_declared_length_rejected_at_decode(self):
        # A corrupt/hostile header claiming a giant frame must poison the
        # stream immediately, not make the decoder buffer gigabytes.
        import struct

        decoder = FrameDecoder(max_bytes=10)
        with pytest.raises(FrameError, match="ceiling"):
            decoder.feed(struct.pack(">I", 11))

    def test_default_ceiling_applies(self):
        import struct

        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(struct.pack(">I", MAX_FRAME_BYTES + 1))

    def test_payload_at_ceiling_accepted(self):
        payload = b"y" * 10
        assert list(
            iter_frames(encode_frame(payload, max_bytes=10), max_bytes=10)
        ) == [payload]

    @given(st.lists(st.binary(max_size=200), max_size=20), st.data())
    def test_round_trip_any_chunking(self, payloads, data):
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        position = 0
        while position < len(stream):
            step = data.draw(st.integers(1, len(stream) - position))
            out.extend(decoder.feed(stream[position:position + step]))
            position += step
        decoder.close()
        assert out == payloads
