"""Unit tests for alert wire encodings (§2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.update import Update
from repro.core.wire import (
    AlertEncoding,
    ChecksumAD1,
    checksum_histories,
    encode_alert,
    minimum_encoding,
)
from repro.displayers.ad1 import AD1
from tests.conftest import alert_deg1, alert_deg2, alert_xy


class TestEncodeAlert:
    def test_full_contains_values(self):
        wire = encode_alert(alert_deg2(3, 1), AlertEncoding.FULL)
        assert wire.payload == (("x", ((3, 0.0), (1, 0.0))),)

    def test_seqnos_drop_values(self):
        wire = encode_alert(alert_deg2(3, 1), AlertEncoding.SEQNOS)
        assert wire.payload == (("x", (3, 1)),)

    def test_heads_keep_only_head(self):
        wire = encode_alert(alert_deg2(3, 1), AlertEncoding.HEADS)
        assert wire.payload == (("x", 3),)

    def test_checksum_is_fixed_size(self):
        wire1 = encode_alert(alert_deg2(3, 1), AlertEncoding.CHECKSUM)
        wire2 = encode_alert(alert_deg2(400, 1), AlertEncoding.CHECKSUM)
        assert wire1.size_bytes == wire2.size_bytes

    def test_sizes_strictly_shrink(self):
        alert = alert_deg2(7, 5)
        sizes = [
            encode_alert(alert, enc).size_bytes
            for enc in (
                AlertEncoding.FULL,
                AlertEncoding.SEQNOS,
                AlertEncoding.HEADS,
                AlertEncoding.CHECKSUM,
            )
        ]
        assert sizes == sorted(sizes, reverse=True)
        assert len(set(sizes)) == 4

    def test_multi_variable_sizes(self):
        wire = encode_alert(alert_xy(2, 3), AlertEncoding.HEADS)
        assert wire.payload == (("x", 2), ("y", 3))

    def test_full_size_scales_with_degree(self):
        deg2 = encode_alert(alert_deg2(3, 1), AlertEncoding.FULL).size_bytes
        deg1 = encode_alert(alert_deg1(3), AlertEncoding.FULL).size_bytes
        assert deg2 > deg1


class TestChecksum:
    def test_deterministic(self):
        assert checksum_histories(alert_deg2(3, 1)) == checksum_histories(
            alert_deg2(3, 1)
        )

    def test_distinguishes_histories(self):
        assert checksum_histories(alert_deg2(3, 1)) != checksum_histories(
            alert_deg2(3, 2)
        )

    def test_ignores_values(self):
        from repro.core.alert import make_alert

        a1 = make_alert("c", {"x": [Update("x", 3, 1.0)]})
        a2 = make_alert("c", {"x": [Update("x", 3, 2.0)]})
        assert checksum_histories(a1) == checksum_histories(a2)

    def test_condname_included(self):
        from repro.core.alert import make_alert

        a1 = make_alert("a", {"x": [Update("x", 3)]})
        a2 = make_alert("b", {"x": [Update("x", 3)]})
        assert checksum_histories(a1) != checksum_histories(a2)


class TestMinimumEncoding:
    def test_known_algorithms(self):
        assert minimum_encoding("AD-1") is AlertEncoding.CHECKSUM
        assert minimum_encoding("AD-2") is AlertEncoding.HEADS
        assert minimum_encoding("AD-3") is AlertEncoding.SEQNOS
        assert minimum_encoding("AD-5") is AlertEncoding.HEADS
        assert minimum_encoding("AD-6") is AlertEncoding.SEQNOS

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            minimum_encoding("AD-9")


@st.composite
def alert_streams(draw):
    pairs = draw(
        st.lists(
            st.tuples(st.integers(2, 12), st.integers(1, 11)).filter(
                lambda p: p[0] > p[1]
            ),
            max_size=20,
        )
    )
    return [alert_deg2(a, b) for a, b in pairs]


class TestChecksumAD1:
    @given(alert_streams())
    def test_identical_decisions_to_ad1(self, stream):
        full = AD1()
        digest = ChecksumAD1()
        for alert in stream:
            assert full.offer(alert) == digest.offer(alert)

    def test_fresh(self):
        ad = ChecksumAD1()
        ad.offer(alert_deg1(1))
        assert ad.fresh().offer(alert_deg1(1)) is True
