"""Unit tests for the rate-estimate statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    estimate_rate,
    rates_differ,
    wilson_interval,
)


class TestWilsonInterval:
    def test_known_value(self):
        # Classic check: 5/10 at 95% -> approximately (0.237, 0.763).
        low, high = wilson_interval(5, 10, 0.95)
        assert low == pytest.approx(0.2366, abs=1e-3)
        assert high == pytest.approx(0.7634, abs=1e-3)

    def test_zero_successes_has_zero_lower_bound(self):
        low, high = wilson_interval(0, 100)
        assert low == 0.0
        assert 0.0 < high < 0.05

    def test_all_successes_has_one_upper_bound(self):
        low, high = wilson_interval(100, 100)
        assert high == 1.0
        assert 0.95 < low < 1.0

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_more_trials_tighter_interval(self):
        low_small, high_small = wilson_interval(5, 10)
        low_big, high_big = wilson_interval(500, 1000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_higher_confidence_wider_interval(self):
        narrow = wilson_interval(5, 10, 0.8)
        wide = wilson_interval(5, 10, 0.99)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)
        with pytest.raises(ValueError):
            wilson_interval(1, 3, confidence=1.5)

    @given(st.integers(0, 200), st.integers(0, 200))
    def test_interval_contains_point_estimate(self, successes, extra):
        trials = successes + extra
        if trials == 0:
            return
        low, high = wilson_interval(successes, trials)
        p = successes / trials
        assert low <= p <= high
        assert 0.0 <= low <= high <= 1.0


class TestEstimateRate:
    def test_renders(self):
        estimate = estimate_rate(3, 10)
        text = str(estimate)
        assert "30.0%" in text
        assert "(3/10)" in text

    def test_point(self):
        assert estimate_rate(0, 0).point == 0.0
        assert estimate_rate(7, 10).point == pytest.approx(0.7)


class TestRatesDiffer:
    def test_clearly_different(self):
        assert rates_differ(90, 100, 10, 100)

    def test_identical_rates_not_different(self):
        assert not rates_differ(50, 100, 50, 100)

    def test_small_samples_inconclusive(self):
        assert not rates_differ(2, 3, 1, 3)

    def test_zero_trials(self):
        assert not rates_differ(0, 0, 5, 10)

    def test_degenerate_pooled_variance(self):
        assert not rates_differ(0, 50, 0, 50)
        assert rates_differ(50, 50, 0, 50)
