"""Unit tests for the reference T mapping and trace combination."""

import pytest

from repro.core.condition import c1, c2
from repro.core.reference import (
    apply_T,
    clear_reference_caches,
    combine_received,
    count_interleavings,
    interleavings,
    is_interleaving_of,
    merge_single_variable,
    reference_cache_info,
    reference_caches_disabled,
    set_reference_cache_size,
)
from repro.core.update import Update, parse_trace


class TestApplyT:
    def test_example_1(self):
        alerts = apply_T(c1(), parse_trace("1x(2900), 2x(3100), 3x(3200)"))
        assert [a.seqno("x") for a in alerts] == [2, 3]

    def test_fresh_state_per_call(self):
        trace = parse_trace("1x(3100)")
        assert len(apply_T(c1(), trace)) == 1
        assert len(apply_T(c1(), trace)) == 1  # no leakage between calls

    def test_source_label(self):
        alerts = apply_T(c1(), parse_trace("1x(3100)"), source="N")
        assert alerts[0].source == "N"

    def test_empty_trace(self):
        assert apply_T(c1(), []) == []


class TestMergeSingleVariable:
    def test_merges_by_seqno(self):
        u1 = parse_trace("1x(10), 3x(30)")
        u2 = parse_trace("2x(20), 3x(30)")
        merged = merge_single_variable(u1, u2)
        assert [u.seqno for u in merged] == [1, 2, 3]
        assert [u.value for u in merged] == [10.0, 20.0, 30.0]

    def test_disjoint(self):
        merged = merge_single_variable(parse_trace("1x"), parse_trace("2x"))
        assert [u.seqno for u in merged] == [1, 2]

    def test_empty_sides(self):
        assert merge_single_variable([], []) == []
        assert [u.seqno for u in merge_single_variable(parse_trace("1x"), [])] == [1]

    def test_conflicting_values_rejected(self):
        with pytest.raises(ValueError):
            merge_single_variable(
                [Update("x", 1, 10.0)], [Update("x", 1, 20.0)]
            )


class TestCombineReceived:
    def test_per_variable_union(self):
        t1 = parse_trace("1x, 2y, 3x")
        t2 = parse_trace("2x, 2y")
        combined = combine_received([t1, t2], ["x", "y"])
        assert [u.seqno for u in combined["x"]] == [1, 2, 3]
        assert [u.seqno for u in combined["y"]] == [2]

    def test_unordered_trace_rejected(self):
        bad = [Update("x", 2), Update("x", 1)]
        with pytest.raises(ValueError):
            combine_received([bad], ["x"])

    def test_three_traces(self):
        traces = [parse_trace("1x"), parse_trace("2x"), parse_trace("3x")]
        combined = combine_received(traces, ["x"])
        assert [u.seqno for u in combined["x"]] == [1, 2, 3]


class TestInterleavings:
    def test_count_matches_enumeration(self):
        per_var = {
            "x": parse_trace("1x, 2x"),
            "y": parse_trace("1y"),
        }
        generated = list(interleavings(per_var))
        assert len(generated) == count_interleavings(per_var) == 3

    def test_all_distinct(self):
        per_var = {"x": parse_trace("1x, 2x"), "y": parse_trace("1y, 2y")}
        generated = [tuple(seq) for seq in interleavings(per_var)]
        assert len(generated) == len(set(generated)) == 6

    def test_preserves_per_variable_order(self):
        per_var = {"x": parse_trace("1x, 2x"), "y": parse_trace("1y")}
        for seq in interleavings(per_var):
            xs = [u.seqno for u in seq if u.varname == "x"]
            assert xs == [1, 2]

    def test_single_variable_single_interleaving(self):
        per_var = {"x": parse_trace("1x, 2x, 3x")}
        assert len(list(interleavings(per_var))) == 1

    def test_empty_variable_skipped(self):
        per_var = {"x": parse_trace("1x"), "y": []}
        assert len(list(interleavings(per_var))) == 1

    def test_is_interleaving_of(self):
        per_var = {"x": parse_trace("1x, 2x"), "y": parse_trace("1y")}
        good = parse_trace("1x, 1y, 2x")
        bad_order = parse_trace("2x, 1y, 1x")
        incomplete = parse_trace("1x, 1y")
        assert is_interleaving_of(good, per_var)
        assert not is_interleaving_of(bad_order, per_var)
        assert not is_interleaving_of(incomplete, per_var)

    def test_count_interleavings_multinomial(self):
        per_var = {"x": parse_trace("1x, 2x, 3x"), "y": parse_trace("1y, 2y")}
        assert count_interleavings(per_var) == 10


class TestTOnMergedInput:
    def test_completeness_reference(self):
        # T(U1 ⊔ U2) for Example 1: all three updates -> alerts at 2 and 3.
        u1 = parse_trace("1x(2900), 2x(3100), 3x(3200)")
        u2 = parse_trace("1x(2900), 3x(3200)")
        merged = merge_single_variable(u1, u2)
        alerts = apply_T(c1(), merged)
        assert [a.seqno("x") for a in alerts] == [2, 3]

    def test_historical_merge_creates_new_alert(self):
        # §3.2: update i only at CE1, i+1 only at CE2 -> N alerts on both.
        u1 = parse_trace("1x(1000)")
        u2 = parse_trace("2x(1500)")
        merged = merge_single_variable(u1, u2)
        alerts = apply_T(c2(), merged)
        assert [a.seqno("x") for a in alerts] == [2]


class TestReferenceCaches:
    def setup_method(self):
        clear_reference_caches()

    def test_cached_matches_uncached(self):
        trace = parse_trace("1x(2900), 2x(3100), 3x(3200)")
        with reference_caches_disabled():
            baseline = apply_T(c1(), trace)
        cached_miss = apply_T(c1(), trace)  # populates the cache
        cached_hit = apply_T(c1(), trace)  # served from the cache
        for alerts in (cached_miss, cached_hit):
            assert [a.identity() for a in alerts] == [
                a.identity() for a in baseline
            ]
        assert reference_cache_info()["apply_T"]["hits"] >= 1

    def test_cache_result_is_a_fresh_list(self):
        trace = parse_trace("1x(3100)")
        first = apply_T(c1(), trace)
        second = apply_T(c1(), trace)
        assert first is not second
        first.append("sentinel")
        assert len(apply_T(c1(), trace)) == 1

    def test_same_seqnos_different_values_not_conflated(self):
        # Update.__eq__/__hash__ ignore `value`; the cache key must not.
        hot = parse_trace("1x(3100)")
        cold = parse_trace("1x(100)")
        assert len(apply_T(c1(), hot)) == 1
        assert len(apply_T(c1(), cold)) == 0

    def test_combine_received_cached_matches_uncached(self):
        u1 = parse_trace("1x(2900), 2x(3100)")
        u2 = parse_trace("1x(2900), 3x(3200)")
        with reference_caches_disabled():
            baseline = combine_received([u1, u2], ("x",))
        assert combine_received([u1, u2], ("x",)) == baseline
        assert combine_received([u1, u2], ("x",)) == baseline
        assert reference_cache_info()["combine_received"]["hits"] >= 1

    def test_combine_received_returns_fresh_lists(self):
        u1 = parse_trace("1x(2900)")
        combined = combine_received([u1], ("x",))
        combined["x"].append("sentinel")
        assert len(combine_received([u1], ("x",))["x"]) == 1

    def test_lru_eviction(self):
        set_reference_cache_size(t_cache=2, combine_cache=2)
        try:
            traces = [parse_trace(f"{i}x(3100)") for i in range(1, 5)]
            for trace in traces:
                apply_T(c1(), trace)
            assert reference_cache_info()["apply_T"]["size"] <= 2
        finally:
            set_reference_cache_size()

    def test_invalid_cache_size(self):
        with pytest.raises(ValueError):
            set_reference_cache_size(t_cache=0)

    def test_opaque_condition_bypasses_cache(self):
        from repro.core.condition import PredicateCondition

        condition = PredicateCondition(
            "opaque", {"x": 1}, lambda h: h["x"][0].value > 3000
        )
        assert condition.cache_key() is None
        before = reference_cache_info()["apply_T"]["misses"]
        apply_T(condition, parse_trace("1x(3100)"))
        assert reference_cache_info()["apply_T"]["misses"] == before
