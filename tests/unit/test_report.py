"""Unit tests for per-run property evaluation and tallying."""

from repro.core.condition import c1, c2
from repro.core.evaluator import ConditionEvaluator
from repro.core.update import parse_trace
from repro.props.report import PropertyTally, evaluate_run
from repro.workloads.traces import lemma_6_example, theorem_10_example


def run_pieces(condition, traces_text):
    traces = [parse_trace(t) for t in traces_text]
    alerts = []
    for trace in traces:
        alerts.extend(ConditionEvaluator(condition).ingest_all(trace))
    return traces, alerts


class TestEvaluateRunSingle:
    def test_all_properties_hold(self):
        condition = c1()
        traces, alerts = run_pieces(
            condition, ["1x(3100), 2x(3200)", "1x(3100), 2x(3200)"]
        )
        # Display one copy of each (what AD-1 would do with in-order arrival).
        displayed = alerts[:2]
        report = evaluate_run(condition, traces, displayed)
        assert report.ordered
        assert report.complete
        assert report.consistent
        assert report.summary == {
            "ordered": True,
            "complete": True,
            "consistent": True,
        }

    def test_unordered_detected(self):
        condition = c1()
        traces, alerts = run_pieces(condition, ["1x(3100), 2x(3200)"])
        displayed = [alerts[1], alerts[0]]
        report = evaluate_run(condition, traces, displayed)
        assert not report.ordered
        assert report.complete  # same alert set, wrong order

    def test_inconsistent_detected(self):
        condition = c2()
        traces, alerts = run_pieces(
            condition, ["1x(400), 2x(700), 3x(720)", "1x(400), 3x(720)"]
        )
        report = evaluate_run(condition, traces, alerts)
        assert not report.consistent
        assert not report.complete


class TestEvaluateRunMulti:
    def test_theorem_10(self):
        example = theorem_10_example()
        displayed = [
            example.alert_streams[0][0],
            example.alert_streams[1][0],
        ]
        report = evaluate_run(example.condition, list(example.traces), displayed)
        assert not report.ordered
        assert not report.consistent
        assert report.complete is not None and not report.complete

    def test_completeness_skipped_when_huge(self):
        example = lemma_6_example()
        displayed = [example.alert_streams[0][0]]
        report = evaluate_run(
            example.condition,
            list(example.traces),
            displayed,
            interleaving_limit=1,
        )
        assert report.complete is None  # skipped, not guessed


class TestPropertyTally:
    def test_counts_violations(self):
        condition = c1()
        traces, alerts = run_pieces(condition, ["1x(3100), 2x(3200)"])
        good = evaluate_run(condition, traces, alerts)
        bad = evaluate_run(condition, traces, [alerts[1], alerts[0]])
        tally = PropertyTally()
        tally.add(good, seed=1)
        tally.add(bad, seed=2)
        assert tally.runs == 2
        assert tally.ordered_violations == 1
        assert not tally.always_ordered
        assert tally.always_complete
        assert tally.always_consistent
        assert tally.first_unordered_seed == 2

    def test_none_verdicts_not_counted(self):
        example = lemma_6_example()
        displayed = [example.alert_streams[0][0]]
        report = evaluate_run(
            example.condition,
            list(example.traces),
            displayed,
            interleaving_limit=1,
        )
        tally = PropertyTally()
        tally.add(report)
        assert tally.completeness_checked == 0
        assert tally.always_complete is None

    def test_cell_rendering(self):
        tally = PropertyTally()
        cell = tally.cell()
        assert cell == {"ordered": True, "complete": None, "consistent": None}

    def test_witnesses_recorded(self):
        condition = c2()
        traces, alerts = run_pieces(
            condition, ["1x(400), 2x(700), 3x(720)", "1x(400), 3x(720)"]
        )
        report = evaluate_run(condition, traces, alerts)
        tally = PropertyTally()
        tally.add(report, seed=42)
        assert tally.first_inconsistent_seed == 42
        assert "consistent" in tally.witnesses


class TestUndecidedCompleteness:
    def _undecided_report(self):
        from repro.props.completeness import CompletenessResult
        from repro.props.orderedness import check_orderedness

        # Synthesize a report whose completeness search ran out of budget.
        ordered = check_orderedness([], ["x", "y"])
        undecided = CompletenessResult(False, undecided=True)
        from repro.props.report import PropertyReport

        return PropertyReport(ordered, undecided, None)

    def test_summary_reports_none(self):
        report = self._undecided_report()
        assert not report.completeness_decided
        assert report.summary["complete"] is None

    def test_tally_skips_undecided(self):
        report = self._undecided_report()
        tally = PropertyTally()
        tally.add(report, seed=7)
        assert tally.completeness_undecided == 1
        assert tally.completeness_checked == 0
        assert tally.completeness_violations == 0
        assert tally.always_complete is None
        assert tally.first_incomplete_seed is None

    def test_dfs_budget_exhaustion_propagates(self):
        # An aggressively small limit forces undecided end-to-end.
        example = lemma_6_example()
        displayed = [
            example.alert_streams[0][0],
            example.alert_streams[1][0],
        ]
        report = evaluate_run(
            example.condition,
            list(example.traces),
            displayed,
            interleaving_limit=2,
        )
        # count_interleavings > 2 here, so the checker is skipped outright;
        # call the DFS directly to exercise the budget path.
        from repro.core.reference import combine_received
        from repro.props.completeness import check_completeness_multi

        per_var = combine_received(example.traces, ("x", "y"))
        result = check_completeness_multi(
            displayed, example.condition, per_var, limit=2
        )
        assert result.undecided
        tally = PropertyTally()
        tally.add(report)
        assert tally.completeness_undecided == 0  # skipped, not undecided


class TestLegacyBackend:
    def test_legacy_and_dfs_agree(self):
        from repro.props.report import legacy_completeness_backend

        example = lemma_6_example()
        displayed = [
            example.alert_streams[0][0],
            example.alert_streams[1][0],
        ]
        modern = evaluate_run(
            example.condition, list(example.traces), displayed
        )
        with legacy_completeness_backend():
            legacy = evaluate_run(
                example.condition, list(example.traces), displayed
            )
        assert modern.summary == legacy.summary
        assert modern.complete.missing == legacy.complete.missing
        assert modern.complete.extraneous == legacy.complete.extraneous
