"""Unit tests for the consistency checkers, including cross-validation of
the fast constraint checkers against the exhaustive oracle."""

import pytest

from repro.core.condition import c2, cm
from repro.core.update import parse_trace
from repro.props.consistency import (
    build_precedence_graph,
    check_consistency_bruteforce,
    check_consistency_multi,
    check_consistency_single,
)
from tests.conftest import alert_deg1, alert_deg2, alert_xy


class TestSingleVariable:
    def test_empty_is_consistent(self):
        assert check_consistency_single([], "x")

    def test_non_historical_any_order_consistent(self):
        alerts = [alert_deg1(3), alert_deg1(1), alert_deg1(2)]
        assert check_consistency_single(alerts, "x")

    def test_theorem_4_conflict(self):
        # alert(2x,1x) requires 2 received; alert(3x,1x) requires 2 missed.
        alerts = [alert_deg2(2, 1), alert_deg2(3, 1)]
        result = check_consistency_single(alerts, "x")
        assert not result
        assert "2" in result.conflict

    def test_conflict_order_independent(self):
        alerts = [alert_deg2(3, 1), alert_deg2(2, 1)]
        assert not check_consistency_single(alerts, "x")

    def test_compatible_gapped_alerts(self):
        # Both require 2 missed: no conflict.
        alerts = [alert_deg2(3, 1), alert_deg2(4, 3)]
        assert check_consistency_single(alerts, "x")

    def test_witness_received_set(self):
        alerts = [alert_deg2(3, 1)]
        result = check_consistency_single(alerts, "x")
        assert result.witness_received == frozenset({1, 3})

    def test_conservative_histories_never_conflict(self):
        # Consecutive histories have no gaps -> Missed stays empty.
        alerts = [alert_deg2(2, 1), alert_deg2(4, 3), alert_deg2(3, 2)]
        assert check_consistency_single(alerts, "x")

    def test_variable_inferred_from_alert(self):
        assert check_consistency_single([alert_deg1(1)])

    def test_multi_variable_alert_needs_explicit_variable(self):
        with pytest.raises(ValueError):
            check_consistency_single([alert_xy(1, 1)])

    def test_duplicates_are_consistent(self):
        alerts = [alert_deg2(3, 1), alert_deg2(3, 1)]
        assert check_consistency_single(alerts, "x")


class TestMultiVariable:
    def test_empty(self):
        assert check_consistency_multi([], ["x", "y"])

    def test_theorem_10_cycle(self):
        # a(2x,1y) and a(1x,2y) cannot coexist.
        alerts = [alert_xy(2, 1), alert_xy(1, 2)]
        result = check_consistency_multi(alerts, ["x", "y"])
        assert not result
        assert "cycle" in result.conflict

    def test_single_alert_consistent(self):
        assert check_consistency_multi([alert_xy(2, 1)], ["x", "y"])

    def test_monotone_alerts_consistent(self):
        alerts = [alert_xy(1, 1), alert_xy(2, 1), alert_xy(2, 2)]
        assert check_consistency_multi(alerts, ["x", "y"])

    def test_lemma6_pair_consistent_but_incomplete(self):
        # (8x,2y) and (8x,4y) ARE consistent (drop 3y's forced alert is a
        # completeness problem, not consistency).
        alerts = [alert_xy(8, 2), alert_xy(8, 4)]
        assert check_consistency_multi(alerts, ["x", "y"])

    def test_membership_conflict_detected(self):
        from repro.core.alert import make_alert
        from repro.core.update import Update

        gap = make_alert(
            "c",
            {"x": [Update("x", 3), Update("x", 1)], "y": [Update("y", 1)]},
        )
        needs2 = make_alert(
            "c",
            {"x": [Update("x", 2), Update("x", 1)], "y": [Update("y", 1)]},
        )
        assert not check_consistency_multi([gap, needs2], ["x", "y"])

    def test_witness_on_success(self):
        result = check_consistency_multi([alert_xy(1, 1)], ["x", "y"])
        assert ("x", 1) in result.witness_received
        assert ("y", 1) in result.witness_received


class TestPrecedenceGraph:
    def test_chain_edges_present(self):
        graph = build_precedence_graph([alert_xy(2, 1)], ["x", "y"])
        assert graph.has_edge(("x", 1), ("x", 2))

    def test_alert_edges_present(self):
        graph = build_precedence_graph([alert_xy(2, 1)], ["x", "y"])
        assert graph.has_edge(("x", 2), ("y", 2))  # 2x before (1+1)y
        assert graph.has_edge(("y", 1), ("x", 3))  # 1y before (2+1)x

    def test_theorem_10_graph_cyclic(self):
        import networkx as nx

        graph = build_precedence_graph(
            [alert_xy(2, 1), alert_xy(1, 2)], ["x", "y"]
        )
        assert not nx.is_directed_acyclic_graph(graph)


class TestBruteForceOracle:
    def test_theorem_4_refuted_by_oracle(self):
        condition = c2()
        u1 = parse_trace("1x(400), 2x(700), 3x(720)")
        u2 = parse_trace("1x(400), 3x(720)")
        from repro.core.reference import combine_received

        per_var = combine_received([u1, u2], ["x"])
        from repro.core.evaluator import ConditionEvaluator

        a1 = ConditionEvaluator(condition).ingest_all(u1)
        a2 = ConditionEvaluator(condition).ingest_all(u2)
        alerts = a1 + a2
        assert not check_consistency_bruteforce(alerts, condition, per_var)

    def test_oracle_finds_witness(self):
        condition = c2()
        u1 = parse_trace("1x(400), 2x(700)")
        per_var = {"x": u1}
        from repro.core.evaluator import ConditionEvaluator

        alerts = ConditionEvaluator(condition).ingest_all(u1)
        result = check_consistency_bruteforce(alerts, condition, per_var)
        assert result
        assert result.witness_sequence is not None

    def test_oracle_limit_enforced(self):
        condition = cm()
        per_var = {
            "x": parse_trace("1x, 2x, 3x, 4x, 5x"),
            "y": parse_trace("1y, 2y, 3y, 4y, 5y"),
        }
        with pytest.raises(RuntimeError):
            check_consistency_bruteforce(
                [alert_xy(1, 1)], condition, per_var, limit=10
            )

    def test_empty_alerts_trivially_consistent(self):
        assert check_consistency_bruteforce([], cm(), {"x": [], "y": []})
