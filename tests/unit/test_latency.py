"""Unit tests for notification-latency analysis."""

import math

import pytest

from repro.analysis.latency import (
    NotificationLatency,
    latency_stats,
    notification_latencies,
)
from repro.components.system import SystemConfig, run_system
from repro.core.condition import c1
from repro.simulation.network import FixedDelay

WORKLOAD = {"x": [(t * 10.0, 3100.0 if t % 2 else 2900.0) for t in range(10)]}


class TestNotificationLatencies:
    def test_all_delivered_when_lossless(self):
        config = SystemConfig(replication=2, front_loss=0.0)
        run = run_system(c1(), WORKLOAD, config, seed=1)
        latencies = notification_latencies(run)
        assert len(latencies) == 5
        assert all(entry.latency is not None for entry in latencies)

    def test_latency_is_front_plus_back_delay(self):
        config = SystemConfig(
            replication=1,
            front_loss=0.0,
            front_delay=FixedDelay(2.0),
            back_delay=FixedDelay(3.0),
        )
        run = run_system(c1(), WORKLOAD, config, seed=1)
        for entry in notification_latencies(run):
            assert entry.latency == pytest.approx(5.0)

    def test_replication_takes_the_faster_path(self):
        # CE1's back link is... both share delay models; use seeds where
        # random delays differ: with 2 CEs the first display per alert is
        # the min of two draws, so mean latency must not exceed the
        # 1-CE mean for the same seed stream statistics.
        def mean_latency(replication: int) -> float:
            totals = []
            for seed in range(25):
                config = SystemConfig(replication=replication, front_loss=0.0)
                run = run_system(c1(), WORKLOAD, config, seed=seed)
                stats = latency_stats(notification_latencies(run))
                totals.append(stats.mean)
            return sum(totals) / len(totals)

        assert mean_latency(2) < mean_latency(1)

    def test_missed_alert_has_none_latency(self):
        config = SystemConfig(replication=1, front_loss=1.0)
        run = run_system(c1(), WORKLOAD, config, seed=1)
        latencies = notification_latencies(run)
        assert len(latencies) == 5
        assert all(entry.latency is None for entry in latencies)

    def test_triggered_at_is_broadcast_time(self):
        config = SystemConfig(replication=1, front_loss=0.0)
        run = run_system(c1(), WORKLOAD, config, seed=1)
        latencies = notification_latencies(run)
        # Alerts trigger on updates 2, 4, 6, 8, 10 -> broadcasts at
        # t = 10, 30, 50, 70, 90.
        assert [entry.triggered_at for entry in latencies] == [
            10.0, 30.0, 50.0, 70.0, 90.0,
        ]


class TestLatencyStats:
    def test_aggregation(self):
        entries = [
            NotificationLatency(("a",), 0.0, 5.0),
            NotificationLatency(("b",), 0.0, 15.0),
            NotificationLatency(("c",), 0.0, None),
        ]
        stats = latency_stats(entries)
        assert stats.expected == 3
        assert stats.delivered == 2
        assert stats.mean == pytest.approx(10.0)
        assert stats.median == pytest.approx(10.0)
        assert stats.miss_fraction == pytest.approx(1 / 3)

    def test_empty_delivery_is_nan(self):
        stats = latency_stats([NotificationLatency(("a",), 0.0, None)])
        assert math.isnan(stats.mean)
        assert stats.miss_fraction == 1.0

    def test_no_expected(self):
        stats = latency_stats([])
        assert stats.expected == 0
        assert stats.miss_fraction == 0.0
