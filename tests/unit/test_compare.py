"""Unit tests for the algorithm comparison harness."""

import pytest

from repro.analysis.compare import compare_algorithms, compare_run
from repro.cli import main
from repro.core.condition import c1, cm
from repro.workloads.scenarios import SINGLE_VARIABLE_SCENARIOS, run_scenario
from tests.conftest import alert_deg1, alert_deg2


class TestCompareAlgorithms:
    def test_verdicts_per_algorithm(self):
        arrivals = [alert_deg1(2), alert_deg1(1), alert_deg1(2)]
        comparison = compare_algorithms(c1(), arrivals, ("AD-1", "AD-2"))
        assert comparison.rows[0].verdicts == {"AD-1": True, "AD-2": True}
        # a(1x) is out of order for AD-2 but new for AD-1:
        assert comparison.rows[1].verdicts == {"AD-1": True, "AD-2": False}
        # duplicate a(2x): both drop it.
        assert comparison.rows[2].verdicts == {"AD-1": False, "AD-2": False}

    def test_summaries_count_displayed(self):
        arrivals = [alert_deg1(2), alert_deg1(1)]
        comparison = compare_algorithms(c1(), arrivals, ("AD-1", "AD-2"))
        assert comparison.summaries["AD-1"]["displayed"] == 2
        assert comparison.summaries["AD-2"]["displayed"] == 1

    def test_properties_scored_with_traces(self):
        from repro.core.update import parse_trace

        traces = [parse_trace("1x(3100), 2x(3200)"), parse_trace("2x(3200)")]
        arrivals = [alert_deg1(2, 3200.0, cond="c1"), alert_deg1(1, 3100.0, cond="c1")]
        comparison = compare_algorithms(
            c1(), arrivals, ("AD-1", "AD-2"), traces=traces
        )
        props_ad1 = comparison.summaries["AD-1"]["properties"]
        props_ad2 = comparison.summaries["AD-2"]["properties"]
        assert props_ad1["complete"] is True
        assert props_ad1["ordered"] is False
        assert props_ad2["ordered"] is True
        assert props_ad2["complete"] is False

    def test_render_contains_everything(self):
        arrivals = [alert_deg2(3, 1), alert_deg2(3, 2)]
        comparison = compare_algorithms(c1(), arrivals, ("AD-1", "AD-3"))
        text = comparison.render()
        assert "AD-1" in text and "AD-3" in text
        assert "a(3x,1x)" in text
        assert "displayed" in text


class TestCompareRun:
    def test_single_variable_defaults(self):
        run = run_scenario(
            SINGLE_VARIABLE_SCENARIOS["aggressive"], "pass", 5, n_updates=15
        )
        comparison = compare_run(run)
        assert comparison.algorithms == ("AD-1", "AD-2", "AD-3", "AD-4")
        assert len(comparison.rows) == len(run.ad_arrivals)
        # AD-3/AD-4 outputs must score consistent on this (or any) run.
        assert comparison.summaries["AD-3"]["properties"]["consistent"] is True
        assert comparison.summaries["AD-4"]["properties"]["ordered"] is True

    def test_multi_variable_defaults(self):
        from repro.workloads.scenarios import MULTI_VARIABLE_SCENARIOS

        run = run_scenario(
            MULTI_VARIABLE_SCENARIOS["non-historical"], "pass", 3, n_updates=6
        )
        comparison = compare_run(run)
        assert comparison.algorithms == ("AD-1", "AD-5", "AD-6")

    def test_domination_visible_in_comparison(self):
        # Whatever AD-4 displays, AD-1 also displays (Theorems 6+8).
        run = run_scenario(
            SINGLE_VARIABLE_SCENARIOS["aggressive"], "pass", 9, n_updates=20
        )
        comparison = compare_run(run)
        for row in comparison.rows:
            if row.verdicts["AD-4"]:
                assert row.verdicts["AD-1"]


class TestCompareCLI:
    def test_compare_command(self, capsys):
        assert main(["compare", "aggressive", "--seed", "5", "--updates", "12"]) == 0
        out = capsys.readouterr().out
        assert "AD-4" in out
        assert "displayed" in out

    def test_compare_multi(self, capsys):
        assert main(
            ["compare", "non-historical", "--multi", "--updates", "6"]
        ) == 0
        assert "AD-6" in capsys.readouterr().out
