"""Unit tests for AD downtime: store-and-forward back links (§1).

"If the PDA is off or disconnected, the CE logs the alert, and sends it
later, when the AD becomes available."
"""

import random

import pytest

from repro.components.system import SystemConfig, run_system
from repro.core.condition import c1
from repro.simulation.failures import CrashSchedule
from repro.simulation.kernel import Kernel
from repro.simulation.network import FixedDelay, StoreAndForwardLink


class TestNextUpTime:
    def test_up_now(self):
        schedule = CrashSchedule(((10.0, 20.0),))
        assert schedule.next_up_time(5.0) == 5.0

    def test_inside_window(self):
        schedule = CrashSchedule(((10.0, 20.0),))
        assert schedule.next_up_time(15.0) == pytest.approx(20.0, abs=1e-3)
        assert schedule.next_up_time(15.0) > 20.0

    def test_chained_windows(self):
        schedule = CrashSchedule(((10.0, 20.0), (20.0 + 5e-7, 30.0)))
        # Recovery at ~20 lands inside the second window; chain to ~30.
        assert schedule.next_up_time(15.0) > 30.0

    def test_never_crashed(self):
        assert CrashSchedule.never().next_up_time(7.0) == 7.0


class TestStoreAndForwardLink:
    def _link(self, kernel, received, schedule):
        return StoreAndForwardLink(
            kernel,
            received.append,
            FixedDelay(1.0),
            random.Random(0),
            availability=schedule,
        )

    def test_delivers_normally_when_up(self):
        kernel = Kernel()
        received = []
        link = self._link(kernel, received, CrashSchedule.never())
        link.send("a")
        kernel.run()
        assert received == ["a"]
        assert link.redelivered == 0

    def test_holds_message_during_downtime(self):
        kernel = Kernel()
        received = []
        times = []
        schedule = CrashSchedule(((0.0, 50.0),))
        link = StoreAndForwardLink(
            kernel,
            lambda m: (received.append(m), times.append(kernel.now)),
            FixedDelay(1.0),
            random.Random(0),
            availability=schedule,
        )
        link.send("held")
        kernel.run()
        assert received == ["held"]
        assert times[0] > 50.0
        assert link.redelivered == 1

    def test_order_preserved_across_downtime(self):
        kernel = Kernel()
        received = []
        schedule = CrashSchedule(((0.0, 50.0),))
        link = self._link(kernel, received, schedule)
        for index in range(5):
            kernel.schedule_at(float(index), lambda i=index: link.send(i))
        kernel.run()
        assert received == [0, 1, 2, 3, 4]

    def test_messages_after_recovery_not_delayed(self):
        kernel = Kernel()
        received = []
        times = []
        schedule = CrashSchedule(((0.0, 10.0),))
        link = StoreAndForwardLink(
            kernel,
            lambda m: (received.append(m), times.append(kernel.now)),
            FixedDelay(1.0),
            random.Random(0),
            availability=schedule,
        )
        kernel.schedule_at(30.0, lambda: link.send("late"))
        kernel.run()
        assert times[0] == pytest.approx(31.0)


class TestADDowntimeEndToEnd:
    WORKLOAD = {"x": [(t * 10.0, 3100.0) for t in range(8)]}

    def test_no_alert_lost_to_ad_downtime(self):
        # Lossless front links + AD off for a long window in the middle:
        # every alert must still reach the display, in order.
        config = SystemConfig(
            replication=2,
            front_loss=0.0,
            ad_crash_schedule=CrashSchedule(((20.0, 200.0),)),
        )
        result = run_system(c1(), self.WORKLOAD, config, seed=4)
        baseline = run_system(
            c1(),
            self.WORKLOAD,
            SystemConfig(replication=2, front_loss=0.0),
            seed=4,
        )
        assert {a.identity() for a in result.displayed} == {
            a.identity() for a in baseline.displayed
        }

    def test_displayed_remains_per_ce_ordered(self):
        config = SystemConfig(
            replication=2,
            front_loss=0.0,
            ad_crash_schedule=CrashSchedule(((15.0, 60.0),)),
        )
        result = run_system(c1(), self.WORKLOAD, config, seed=4)
        for source in ("CE1", "CE2"):
            seqnos = [a.seqno("x") for a in result.displayed if a.source == source]
            assert seqnos == sorted(seqnos)

    def test_properties_unaffected_by_ad_downtime(self):
        # Theorem 2 must keep holding: AD downtime delays alerts but the
        # displayed set equals the no-downtime one for this seed.
        config = SystemConfig(
            replication=2,
            front_loss=0.3,
            ad_crash_schedule=CrashSchedule(((10.0, 120.0),)),
        )
        result = run_system(c1(), self.WORKLOAD, config, seed=11)
        report = result.evaluate_properties()
        assert report.complete
        assert report.consistent
