"""Unit tests for the membership package: config validation, the
unreliable failure detector, analytic recovery planning, churn verdicts,
and the CrashSchedule edge cases the planner leans on."""

import math

import pytest

from repro.membership import (
    MembershipConfig,
    MembershipPlan,
    churn_summary,
    classify_verdicts,
    membership_field_default,
    node_view,
    plan_membership,
)
from repro.membership.config import MEMBERSHIP_FIELD_KINDS
from repro.props.report import PropertyTally
from repro.simulation.failures import CrashSchedule


# ---------------------------------------------------------------- config

class TestMembershipConfig:
    def test_defaults_construct(self):
        config = MembershipConfig()
        assert config.suspicion_window == 8.0
        assert config.catchup_source == "peer-then-log"

    @pytest.mark.parametrize("field,value", [
        ("heartbeat_interval", 0.0),
        ("heartbeat_interval", -1.0),
        ("heartbeat_delay", -0.5),
        ("detection_timeout", -1.0),
        ("catchup_latency", -2.0),
        ("retry_backoff", -1e-9),
        ("suspicion_threshold", 0),
    ])
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ValueError, match=field):
            MembershipConfig(**{field: value})

    @pytest.mark.parametrize("field", [
        "heartbeat_interval", "heartbeat_delay", "detection_timeout",
        "catchup_latency", "retry_backoff",
    ])
    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite(self, field, bad):
        with pytest.raises(ValueError, match="finite"):
            MembershipConfig(**{field: bad})

    def test_rejects_unknown_catchup_source(self):
        with pytest.raises(ValueError, match="catchup_source"):
            MembershipConfig(catchup_source="carrier-pigeon")

    def test_with_value_clamps_to_kind(self):
        config = MembershipConfig()
        assert config.with_value("heartbeat_interval", -5.0).heartbeat_interval == 1e-3
        assert config.with_value("detection_timeout", -1.0).detection_timeout == 0.0
        assert config.with_value("suspicion_threshold", 0).suspicion_threshold == 1
        assert config.with_value("suspicion_threshold", 2.9).suspicion_threshold == 2
        assert config.with_value("catchup_source", "log").catchup_source == "log"

    def test_field_kinds_cover_every_field(self):
        import dataclasses
        assert set(MEMBERSHIP_FIELD_KINDS) == {
            f.name for f in dataclasses.fields(MembershipConfig)
        }

    def test_field_defaults_round_trip(self):
        config = MembershipConfig()
        for name in MEMBERSHIP_FIELD_KINDS:
            assert getattr(config, name) == membership_field_default(name)
        with pytest.raises(KeyError):
            membership_field_default("nope")


# -------------------------------------------------------------- detector

class TestDetector:
    CONFIG = MembershipConfig(
        heartbeat_interval=5.0, heartbeat_delay=0.5,
        detection_timeout=4.0, suspicion_threshold=2,
    )

    def test_healthy_node_is_never_suspected(self):
        view = node_view("CE1", CrashSchedule.never(), self.CONFIG, 100.0)
        assert view.suspects == ()
        assert view.detections == ()
        assert view.missed_detections == 0
        assert view.heartbeats[:3] == (0.0, 5.0, 10.0)
        assert view.arrivals[:3] == (0.5, 5.5, 10.5)
        assert not view.believed_down(50.0)

    def test_long_crash_is_detected_with_bounded_latency(self):
        schedule = CrashSchedule(((20.0, 60.0),))
        view = node_view("CE1", schedule, self.CONFIG, 100.0)
        assert view.missed_detections == 0
        (crashed, detected), = view.detections
        assert crashed == 20.0
        # Last pre-crash heartbeat lands at 15.5; suspicion after the
        # 8-unit window of silence.
        assert detected == pytest.approx(23.5)
        assert view.believed_down(30.0)
        assert not view.believed_down(70.0)

    def test_short_crash_is_missed(self):
        # Down for less than the suspicion window and back before the
        # next heartbeat is due: nobody got impatient.
        schedule = CrashSchedule(((11.0, 14.0),))
        view = node_view("CE1", schedule, self.CONFIG, 100.0)
        assert view.detections == ()
        assert view.missed_detections == 1

    def test_impatient_detector_false_suspects(self):
        # Suspicion window (2) shorter than the heartbeat gap (5): every
        # inter-heartbeat silence looks like a crash.
        impatient = MembershipConfig(
            heartbeat_interval=5.0, heartbeat_delay=0.5,
            detection_timeout=2.0, suspicion_threshold=1,
        )
        view = node_view("CE1", CrashSchedule.never(), impatient, 20.0)
        assert view.suspects  # false positives, by design
        assert view.believed_down(3.0)

    def test_silence_near_horizon_stays_suspected(self):
        schedule = CrashSchedule(((90.0, 200.0),))
        view = node_view("CE1", schedule, self.CONFIG, 100.0)
        suspected, restored = view.suspects[-1]
        assert restored == 100.0  # the horizon sentinel


# --------------------------------------------------------------- planner

HORIZON = 200.0

def _plan(crashes, config=None, replication=2, ad=None):
    return plan_membership(
        crashes, ad, replication, config or MembershipConfig(), HORIZON
    )


class TestPlanner:
    def test_no_crashes_no_recoveries(self):
        plan = _plan({})
        assert isinstance(plan, MembershipPlan)
        assert plan.recoveries == ()
        assert plan.degraded == ()
        assert plan.quorum == 2
        assert len(plan.views) == 3  # CE1, CE2, AD

    def test_single_crash_recovers_from_live_peer(self):
        plan = _plan({0: CrashSchedule(((30.0, 60.0),))})
        event, = plan.recoveries
        assert event.ce_index == 0
        assert event.rejoin_time == pytest.approx(60.0, abs=1e-5)
        assert event.source == "peer:CE2"
        assert event.attempts == 0
        assert event.successful
        assert event.complete_time == pytest.approx(
            event.rejoin_time + 2.0  # default catchup_latency
        )
        assert plan.events_for(0) == (event,)
        assert plan.events_for(1) == ()

    def test_log_source_when_no_peer_exists(self):
        plan = _plan({0: CrashSchedule(((30.0, 60.0),))}, replication=1)
        event, = plan.recoveries
        assert event.source == "log"

    def test_source_none_means_no_catchup(self):
        config = MembershipConfig(catchup_source="none")
        plan = _plan({0: CrashSchedule(((30.0, 60.0),))}, config=config)
        event, = plan.recoveries
        assert event.source == "none"
        assert event.complete_time is None
        assert not event.successful
        assert not event.aborted

    def test_incomplete_peer_costs_a_retry_backoff(self):
        # CE2's crash (51–54) is too short for anyone to suspect it, but
        # its slow catch-up is still in flight when CE1 rejoins at 60:
        # CE1 tries the believed-alive-but-incomplete peer, burns one
        # retry backoff, then falls back to the log.
        plan = _plan({
            0: CrashSchedule(((30.0, 60.0),)),
            1: CrashSchedule(((51.0, 54.0),)),
        }, config=MembershipConfig(catchup_latency=10.0, retry_backoff=1.0))
        ce1 = plan.events_for(0)[0]
        assert ce1.attempts == 1
        assert ce1.source == "log"
        assert ce1.complete_time == pytest.approx(60.0 + 1.0 + 10.0, abs=1e-5)

    def test_recrash_mid_transfer_aborts(self):
        plan = _plan({
            0: CrashSchedule(((30.0, 60.0), (61.0, 90.0))),
        })
        first, second = plan.events_for(0)
        assert first.aborted and first.complete_time is None
        assert second.successful

    def test_below_quorum_intervals(self):
        # Both CEs down together: zero complete replicas < quorum of 2.
        plan = _plan({
            0: CrashSchedule(((30.0, 60.0),)),
            1: CrashSchedule(((40.0, 70.0),)),
        })
        assert plan.degraded
        assert plan.degraded_time > 0.0
        assert 0.0 < plan.degraded_fraction < 1.0
        start, end = plan.degraded[0]
        assert start == pytest.approx(30.0)

    def test_metrics_roll_up(self):
        plan = _plan({0: CrashSchedule(((30.0, 60.0),))})
        assert len(plan.detection_latencies) == 1
        assert plan.missed_detections == 0
        latency, = plan.recovery_latencies
        assert latency == pytest.approx(60.0 + 2.0 - 30.0, abs=1e-5)


# --------------------------------------------------------------- verdicts

class _FakeRun:
    def __init__(self, plan, caught_up):
        self.membership = plan
        self.caught_up = caught_up


class TestChurnVerdicts:
    def test_summary_digest(self):
        plan = _plan({
            0: CrashSchedule(((30.0, 60.0),)),
            1: CrashSchedule(((40.0, 70.0),)),
        })
        digest = churn_summary(_FakeRun(plan, (3, 1)))
        assert digest["below_quorum"] is True
        assert digest["recoveries"] == 2
        assert digest["recovered"] == 2
        assert digest["caught_up"] == 4
        assert digest["mean_detection_latency"] is not None
        assert digest["mean_time_to_recover"] is not None

    def test_classify_degraded_vs_steady(self):
        summary = {"ordered": False, "complete": True, "consistent": None}
        assert classify_verdicts(summary, {"below_quorum": True}) == {
            "ordered": "violated-degraded",
            "complete": "ok",
            "consistent": "undecided",
        }
        assert classify_verdicts(summary, {"below_quorum": False})[
            "ordered"
        ] == "violated-steady"
        assert classify_verdicts(summary, None)["ordered"] == "violated-steady"

    def test_tally_splits_violations_by_quorum(self):
        from repro.props.orderedness import OrderednessResult

        def report(churn):
            from repro.props.report import PropertyReport
            return PropertyReport(
                ordered=OrderednessResult(False, "x", 0),
                complete=None,
                consistent=None,
                churn=churn,
            )

        tally = PropertyTally()
        tally.add(report({"below_quorum": True}), seed=1)
        tally.add(report({"below_quorum": False}), seed=2)
        tally.add(report(None), seed=3)  # membership off: not counted
        assert tally.degraded_runs == 1
        assert tally.violations_degraded == 1
        assert tally.violations_steady == 1


# -------------------------------------------- CrashSchedule edge cases

class TestCrashScheduleValidation:
    def test_nan_endpoints_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            CrashSchedule(((math.nan, 5.0),))
        with pytest.raises(ValueError, match="finite"):
            CrashSchedule(((0.0, math.nan),))

    def test_infinite_endpoints_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            CrashSchedule(((0.0, math.inf),))

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError, match="before start"):
            CrashSchedule(((5.0, 3.0),))

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError, match="overlaps"):
            CrashSchedule(((0.0, 10.0), (5.0, 15.0)))

    def test_unsorted_windows_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            CrashSchedule(((20.0, 30.0), (0.0, 10.0)))

    def test_zero_length_window_is_legal(self):
        schedule = CrashSchedule(((5.0, 5.0),))
        assert not schedule.is_up(5.0)
        assert schedule.is_up(5.0 + 1e-9)
        assert schedule.total_downtime == 0.0

    def test_adjacent_windows_chain_next_up_time(self):
        schedule = CrashSchedule(((0.0, 10.0), (10.0, 20.0)))
        assert schedule.next_up_time(5.0) == pytest.approx(20.0, abs=1e-5)

    def test_planner_handles_zero_length_and_adjacent_windows(self):
        plan = _plan({
            0: CrashSchedule(((30.0, 30.0),)),
            1: CrashSchedule(((40.0, 50.0), (50.0, 55.0))),
        })
        assert len(plan.recoveries) == 3
        assert all(
            e.successful or e.aborted for e in plan.recoveries
        )
