"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in (
            ["tables"],
            ["scenario", "lossless"],
            ["shrink", "aggressive"],
            ["domination"],
            ["maximality"],
            ["availability"],
            ["list"],
        ):
            args = parser.parse_args(command)
            assert callable(args.func)


class TestListCommand:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("AD-1", "AD-6", "lossless", "aggressive", "table1", "ad6"):
            assert name in out


class TestScenarioCommand:
    def test_runs_and_reports(self, capsys):
        assert main(["scenario", "lossless", "--seed", "3", "--updates", "10"]) == 0
        out = capsys.readouterr().out
        assert "properties:" in out
        assert "CE1 received" in out

    def test_timeline_flag(self, capsys):
        assert main(
            ["scenario", "lossless", "--updates", "5", "--timeline"]
        ) == 0
        out = capsys.readouterr().out
        assert "broadcast lane" in out

    def test_multi_flag(self, capsys):
        assert main(
            ["scenario", "non-historical", "--multi", "--algorithm", "AD-5",
             "--updates", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "DM-x" in out and "DM-y" in out

    def test_unknown_row_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "weird"])


class TestTablesCommand:
    def test_small_table_run_agrees(self, capsys):
        code = main(["tables", "table2", "--trials", "25", "--updates", "25"])
        out = capsys.readouterr().out
        assert "table2" in out
        assert "overall paper agreement: YES" in out
        assert code == 0

    def test_unknown_table(self, capsys):
        assert main(["tables", "table99"]) == 2


class TestShrinkCommand:
    def test_finds_and_shrinks(self, capsys):
        code = main(
            ["shrink", "aggressive", "--property", "consistent",
             "--updates", "20", "--max-seeds", "100"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Counterexample: consistent violated" in out
        assert "shrunk from" in out

    def test_reports_when_nothing_found(self, capsys):
        # Lossless + AD-4 violates nothing: shrink must fail cleanly.
        code = main(
            ["shrink", "lossless", "--algorithm", "AD-4",
             "--updates", "10", "--max-seeds", "3"]
        )
        assert code == 1
        assert "no" in capsys.readouterr().out


class TestExperimentsCommands:
    def test_domination_small(self, capsys):
        assert main(["domination", "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "AD-1 vs AD-2" in out

    def test_maximality_small(self, capsys):
        assert main(["maximality", "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "maximal" in out

    def test_availability_small(self, capsys):
        assert main(["availability", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "mean miss" in out
