"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in (
            ["tables"],
            ["scenario", "lossless"],
            ["shrink", "aggressive"],
            ["domination"],
            ["maximality"],
            ["availability"],
            ["list"],
        ):
            args = parser.parse_args(command)
            assert callable(args.func)


class TestListCommand:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("AD-1", "AD-6", "lossless", "aggressive", "table1", "ad6"):
            assert name in out


class TestScenarioCommand:
    def test_runs_and_reports(self, capsys):
        assert main(["scenario", "lossless", "--seed", "3", "--updates", "10"]) == 0
        out = capsys.readouterr().out
        assert "properties:" in out
        assert "CE1 received" in out

    def test_timeline_flag(self, capsys):
        assert main(
            ["scenario", "lossless", "--updates", "5", "--timeline"]
        ) == 0
        out = capsys.readouterr().out
        assert "broadcast lane" in out

    def test_multi_flag(self, capsys):
        assert main(
            ["scenario", "non-historical", "--multi", "--algorithm", "AD-5",
             "--updates", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "DM-x" in out and "DM-y" in out

    def test_unknown_row_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "weird"])


class TestTablesCommand:
    def test_small_table_run_agrees(self, capsys):
        code = main(["tables", "table2", "--trials", "25", "--updates", "25"])
        out = capsys.readouterr().out
        assert "table2" in out
        assert "overall paper agreement: YES" in out
        assert code == 0

    def test_unknown_table(self, capsys):
        assert main(["tables", "table99"]) == 2


class TestShrinkCommand:
    def test_finds_and_shrinks(self, capsys):
        code = main(
            ["shrink", "aggressive", "--property", "consistent",
             "--updates", "20", "--max-seeds", "100"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Counterexample: consistent violated" in out
        assert "shrunk from" in out

    def test_reports_when_nothing_found(self, capsys):
        # Lossless + AD-4 violates nothing: shrink must fail cleanly.
        code = main(
            ["shrink", "lossless", "--algorithm", "AD-4",
             "--updates", "10", "--max-seeds", "3"]
        )
        assert code == 1
        assert "no" in capsys.readouterr().out


class TestFuzzCommand:
    def test_finds_minimizes_and_replays(self, capsys, tmp_path):
        code = main(
            ["fuzz", "--target", "consistency", "--budget", "80",
             "--minimize", "--minimize-limit", "1",
             "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "distinct violating" in out
        assert "shrunk witness" in out
        assert "replay OK" in out
        traces = list(tmp_path.glob("witness_*.jsonl"))
        assert len(traces) == 1
        # The written artifact must itself replay cleanly.
        assert main(["trace", "replay", str(traces[0])]) == 0

    def test_guaranteed_cell_finds_nothing(self, capsys):
        # AD-3 guarantees consistency, so the hunt must come back empty
        # and the exit status must say so.
        code = main(
            ["fuzz", "--target", "consistency", "--algorithm", "AD-3",
             "--budget", "30"]
        )
        assert code == 1
        assert "no violations found" in capsys.readouterr().out

    def test_target_spellings_accepted(self):
        parser = build_parser()
        for spelling in ("ordered", "orderedness", "complete",
                         "completeness", "consistent", "consistency", "any"):
            args = parser.parse_args(["fuzz", "--target", spelling])
            assert callable(args.func)


class TestExperimentsCommands:
    def test_domination_small(self, capsys):
        assert main(["domination", "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "AD-1 vs AD-2" in out

    def test_maximality_small(self, capsys):
        assert main(["maximality", "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "maximal" in out

    def test_availability_small(self, capsys):
        assert main(["availability", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "mean miss" in out


class TestFeedCommands:
    def test_record_and_conform(self, tmp_path, capsys):
        out = tmp_path / "run.feed.jsonl"
        assert main([
            "feed", "record", "aggressive", "--algorithm", "AD-3",
            "--seed", "7", "--updates", "20", "--out", str(out),
        ]) == 0
        assert out.exists()
        assert "recorded" in capsys.readouterr().out

        assert main(["feed", "conform", str(out)]) == 0
        text = capsys.readouterr().out
        assert "IDENTICAL" in text
        for runtime in ("kernel:object", "kernel:array", "direct", "asyncio"):
            assert runtime in text

    def test_conform_no_service(self, tmp_path, capsys):
        out = tmp_path / "run.feed.jsonl"
        main([
            "feed", "record", "lossless", "--seed", "1",
            "--updates", "10", "--out", str(out),
        ])
        capsys.readouterr()
        assert main(["feed", "conform", str(out), "--no-service"]) == 0
        text = capsys.readouterr().out
        assert "asyncio" not in text
        assert "IDENTICAL" in text

    def test_chaos_feed_records(self, tmp_path, capsys):
        out = tmp_path / "chaos.feed.jsonl"
        assert main([
            "feed", "record", "aggressive", "--algorithm", "AD-4",
            "--seed", "11", "--updates", "20", "--chaos", "1.5",
            "--out", str(out),
        ]) == 0
        assert main(["feed", "conform", str(out)]) == 0

    def test_send_against_live_server(self, tmp_path, capsys):
        # In-process server on an ephemeral port; the send command is
        # exercised end to end through the public CLI path.
        import asyncio
        import threading

        from repro.service import MonitorService, ServiceConfig

        out = tmp_path / "run.feed.jsonl"
        main([
            "feed", "record", "aggressive", "--seed", "7",
            "--updates", "20", "--out", str(out),
        ])
        capsys.readouterr()

        loop = asyncio.new_event_loop()
        service = MonitorService(ServiceConfig())
        started = threading.Event()

        def run_server():
            asyncio.set_event_loop(loop)

            async def serve():
                await service.start()
                started.set()
                await service.serve_until(once=True)

            loop.run_until_complete(serve())

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        try:
            assert main([
                "feed", "send", str(out),
                "--port", str(service.port), "--conform",
            ]) == 0
            text = capsys.readouterr().out
            assert "IDENTICAL" in text
            assert "latency" in text
        finally:
            thread.join(timeout=10)
        assert service.connections_handled == 1
