"""Property-based tests for the simulation substrate and the evaluator.

These check the §2.1 link assumptions and the CE's determinism over
randomly generated schedules — the invariants every proof in the paper
silently relies on.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.components.system import SystemConfig, run_system
from repro.core.condition import c1, c2
from repro.core.evaluator import ConditionEvaluator
from repro.core.sequences import is_subsequence
from repro.core.update import Update
from repro.simulation.kernel import Kernel
from repro.simulation.network import LossyFifoLink, ReliableLink, UniformDelay


send_schedules = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=40,
).map(sorted)


@settings(max_examples=60, deadline=None)
@given(send_schedules, st.integers(0, 2**31), st.floats(0.0, 0.9))
def test_lossy_fifo_link_invariants(times, seed, loss):
    """Delivered ⊆ sent, in send order, regardless of delays/losses."""
    kernel = Kernel()
    received: list[int] = []
    link = LossyFifoLink(
        kernel,
        received.append,
        UniformDelay(0.0, 50.0),
        random.Random(seed),
        loss_prob=loss,
    )
    for index, time in enumerate(times):
        kernel.schedule_at(time, lambda i=index: link.send(i))
    kernel.run()
    assert received == sorted(set(received))          # in-order, no dups
    assert set(received) <= set(range(len(times)))    # subset of sent
    assert link.sent == len(times)
    assert link.delivered == len(received)


@settings(max_examples=60, deadline=None)
@given(send_schedules, st.integers(0, 2**31))
def test_reliable_link_invariants(times, seed):
    """Every message delivered, exactly once, in send order."""
    kernel = Kernel()
    received: list[int] = []
    link = ReliableLink(
        kernel, received.append, UniformDelay(0.0, 50.0), random.Random(seed)
    )
    for index, time in enumerate(times):
        kernel.schedule_at(time, lambda i=index: link.send(i))
    kernel.run()
    assert received == list(range(len(times)))


value_traces = st.lists(
    st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
    min_size=1,
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(value_traces)
def test_evaluator_is_deterministic_T(values):
    """Two fresh evaluators over the same trace emit identical alerts."""
    updates = [Update("x", i + 1, v) for i, v in enumerate(values)]
    a1 = ConditionEvaluator(c2()).ingest_all(updates)
    a2 = ConditionEvaluator(c2()).ingest_all(updates)
    assert a1 == a2


@settings(max_examples=60, deadline=None)
@given(value_traces)
def test_evaluator_alert_seqnos_strictly_increase(values):
    """Πx(T(U)) is strictly increasing: one alert per triggering arrival."""
    updates = [Update("x", i + 1, v) for i, v in enumerate(values)]
    alerts = ConditionEvaluator(c2()).ingest_all(updates)
    seqnos = [a.seqno("x") for a in alerts]
    assert all(b > a for a, b in zip(seqnos, seqnos[1:]))


@settings(max_examples=40, deadline=None)
@given(value_traces, st.data())
def test_evaluator_alert_histories_subset_of_input(values, data):
    """Every alert's history updates were actually received."""
    updates = [Update("x", i + 1, v) for i, v in enumerate(values)]
    keep = data.draw(
        st.lists(st.booleans(), min_size=len(updates), max_size=len(updates))
    )
    received = [u for u, k in zip(updates, keep) if k]
    evaluator = ConditionEvaluator(c2())
    alerts = evaluator.ingest_all(received)
    received_set = set(received)
    for alert in alerts:
        for update in alert.histories["x"]:
            assert update in received_set


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31), st.floats(0.0, 0.6))
def test_end_to_end_received_are_ordered_subsequences(seed, loss):
    """§3: U_i ⊑ U and each U_i is ordered, for any loss level and seed."""
    workload = {"x": [(t * 10.0, 3100.0) for t in range(15)]}
    config = SystemConfig(replication=2, front_loss=loss)
    run = run_system(c1(), workload, config, seed=seed)
    sent = list(run.sent["x"])
    for trace in run.received:
        assert is_subsequence(list(trace), sent)
        seqnos = [u.seqno for u in trace]
        assert seqnos == sorted(seqnos)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31))
def test_end_to_end_alert_conservation(seed):
    """Alerts generated == alerts arrived == displayed + filtered."""
    workload = {"x": [(t * 10.0, 3100.0) for t in range(12)]}
    config = SystemConfig(replication=2, front_loss=0.3, ad_algorithm="AD-2")
    run = run_system(c1(), workload, config, seed=seed)
    generated = sorted(a.identity() for a in run.all_generated)
    arrived = sorted(a.identity() for a in run.ad_arrivals)
    assert generated == arrived
    assert len(run.displayed) + len(run.filtered) == len(run.ad_arrivals)
