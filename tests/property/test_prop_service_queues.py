"""Property tests: the service pipeline loses nothing and never deadlocks.

Three invariant families over randomized pacing, queue capacities and
workloads:

* **No update lost / FIFO preserved** — routing a random delivery
  sequence through bounded queues hands every CE exactly its
  subsequence, in order, regardless of capacities or consumer pacing
  (per-variable FIFO follows: a CE's stream *is* delivery order).
* **Backpressure never deadlocks** — every scenario runs under an
  ``asyncio.wait_for`` watchdog; a backpressure cycle would time out.
* **End-to-end conformance under stress** — the full asyncio service,
  squeezed through tiny queues with randomly paced CE consumers, still
  displays byte-identical output to the scheduler-free direct runtime.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings, strategies as st

from repro.core.update import Update
from repro.engine.spec import TrialSpec
from repro.service import (
    CLOSE,
    AsyncioServiceRuntime,
    BoundedQueue,
    DirectRuntime,
    ServiceConfig,
    record_feed,
)
from repro.service.consumers import route_updates

WATCHDOG = 20.0  # seconds; generous — a real deadlock never resolves


def run_with_watchdog(coroutine):
    async def bounded():
        return await asyncio.wait_for(coroutine, timeout=WATCHDOG)

    return asyncio.run(bounded())


# -- router + bounded queues --------------------------------------------------

deliveries_strategy = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 999)), max_size=60
)


class TestRouterPipeline:
    @given(
        deliveries=deliveries_strategy,
        capacity=st.integers(1, 8),
        pacing=st.lists(st.integers(0, 3), min_size=3, max_size=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_nothing_lost_fifo_kept_no_deadlock(
        self, deliveries, capacity, pacing
    ):
        # Updates here are opaque tokens: (ce, k) pairs with unique ids.
        # Consumers yield to the loop `pacing[ce]` times per item, so
        # producers routinely run into full queues.
        async def scenario():
            ingest = BoundedQueue("ingest", capacity)
            ce_queues = [BoundedQueue(f"ce{i}", capacity) for i in range(3)]
            received: list[list[int]] = [[], [], []]

            async def consume(ce_index: int) -> None:
                while True:
                    item = await ce_queues[ce_index].get()
                    if item is CLOSE:
                        return
                    for _ in range(pacing[ce_index]):
                        await asyncio.sleep(0)
                    update, _ingest_ns = item
                    received[ce_index].append(update)

            async def produce() -> None:
                for ce_index, token in deliveries:
                    await ingest.put((ce_index, token, 0))
                await ingest.close()

            async with asyncio.TaskGroup() as group:
                group.create_task(route_updates(ingest, ce_queues))
                for index in range(3):
                    group.create_task(consume(index))
                group.create_task(produce())
            return received

        received = run_with_watchdog(scenario())
        for ce_index in range(3):
            expected = [t for ce, t in deliveries if ce == ce_index]
            assert received[ce_index] == expected  # nothing lost, FIFO kept

    @given(
        items=st.lists(st.integers(), max_size=40),
        capacity=st.integers(1, 4),
        consumer_yields=st.integers(0, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_queue_conserves_and_orders(
        self, items, capacity, consumer_yields
    ):
        async def scenario():
            queue = BoundedQueue("q", capacity)
            out: list[int] = []

            async def consume() -> None:
                while True:
                    item = await queue.get()
                    if item is CLOSE:
                        return
                    for _ in range(consumer_yields):
                        await asyncio.sleep(0)
                    out.append(item)

            async def produce() -> None:
                for item in items:
                    await queue.put(item)
                await queue.close()

            async with asyncio.TaskGroup() as group:
                group.create_task(consume())
                group.create_task(produce())
            assert queue.stats.puts == queue.stats.gets == len(items)
            assert queue.stats.peak <= capacity
            return out

        assert run_with_watchdog(scenario()) == items


# -- full service under stress ------------------------------------------------

spec_strategy = st.builds(
    TrialSpec,
    matrix=st.just("single"),
    row=st.sampled_from(["non-historical", "conservative", "aggressive"]),
    algorithm=st.sampled_from(["AD-1", "AD-2", "AD-3", "AD-4", "AD-5", "AD-6"]),
    seed=st.integers(0, 50),
    n_updates=st.integers(5, 18),
    replication=st.integers(2, 3),
)


class TestServiceConformsUnderStress:
    @given(
        spec=spec_strategy,
        capacity=st.integers(1, 6),
        yields=st.integers(0, 3),
    )
    @settings(max_examples=12, deadline=None)
    def test_service_equals_direct_runtime(self, spec, capacity, yields):
        feed = record_feed(spec)
        reference = DirectRuntime().execute(feed)

        async def pace(ce_index: int, update: Update) -> None:
            # Deterministic unfair pacing: odd CEs yield more, so queue
            # occupancies skew and the reorder buffer actually reorders.
            for _ in range(yields * (1 + ce_index % 2)):
                await asyncio.sleep(0)

        runtime = AsyncioServiceRuntime(
            ServiceConfig(queue_capacity=capacity), pace=pace
        )
        result = run_with_watchdog(runtime.execute_async(feed))
        assert result.displayed_bytes() == reference.displayed_bytes()
        assert result.verdicts == reference.verdicts
        # Conservation end-to-end: every delivery ingested and routed,
        # every alert through the shared queue.
        assert result.counters["service/get/ingest"] == len(feed.deliveries)
        assert result.counters.get("service/get/alerts", 0) == feed.total_alerts
