"""Domination and per-algorithm guarantees survive arbitrary fault plans.

The paper's domination results (Theorems 6 and 8, extended by
composition to AD-4 and the multi-variable algorithms) are statements
about the AD alone: *given the same arrival stream*, the non-filtering
AD-1 displays a supersequence of every filtering algorithm's output.
Likewise the safety guarantees behind Theorems 5, 7 and 9 — AD-2's
output is strictly ordered, AD-3's is consistent and duplicate-free,
AD-4's is both — are per-stream properties of the filters.

Faults upstream — crashes, outages, burst loss, duplication, congestion
spikes — can mangle the stream arbitrarily, but whatever stream reaches
the AD, both the domination order and the filters' guarantees must hold
on it.  Hypothesis drives random fault intensities through full
simulated runs with the pass-through AD, harvests the fault-mangled
arrival stream, and checks every claim on it.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.experiments import (
    consistency_property,
    strict_orderedness_property,
)
from repro.displayers.ad1 import AD1
from repro.displayers.ad2 import AD2
from repro.displayers.ad3 import AD3
from repro.displayers.ad4 import AD4
from repro.displayers.ad5 import AD5
from repro.displayers.ad6 import AD6
from repro.displayers.base import run_ad
from repro.faults import DEFAULT_CHAOS_PROFILE
from repro.props.consistency import check_consistency_multi
from repro.props.domination import dominates_on
from repro.props.orderedness import check_orderedness
from repro.workloads.scenarios import (
    MULTI_VARIABLE_SCENARIOS,
    ROW_ORDER,
    SINGLE_VARIABLE_SCENARIOS,
    run_scenario,
)

rows = st.sampled_from(list(ROW_ORDER))
seeds = st.integers(0, 2**31)
intensities = st.floats(0.0, 4.0, allow_nan=False, allow_infinity=False)


def _arrivals(scenarios, row, seed, n, chaos):
    faults = DEFAULT_CHAOS_PROFILE.scaled(chaos)
    run = run_scenario(
        scenarios[row],
        "pass",
        seed,
        n_updates=n,
        faults=None if faults.is_clean else faults,
    )
    return run.ad_arrivals


@settings(max_examples=30, deadline=None)
@given(rows, seeds, st.integers(5, 16), intensities)
def test_single_variable_domination_survives_faults(row, seed, n, chaos):
    """Theorems 6/8 (+ composition): AD-1 dominates AD-2, AD-3 and AD-4
    on every stream a fault plan can produce."""
    arrivals = _arrivals(SINGLE_VARIABLE_SCENARIOS, row, seed, n, chaos)
    for dominated in (AD2("x"), AD3("x"), AD4("x")):
        holds, _strict = dominates_on(AD1(), dominated, arrivals)
        assert holds, (
            f"AD-1 >= {dominated.name} violated on a fault-mangled stream "
            f"of {len(arrivals)} arrivals"
        )


@settings(max_examples=15, deadline=None)
@given(rows, seeds, st.integers(4, 10), intensities)
def test_multi_variable_domination_survives_faults(row, seed, n, chaos):
    arrivals = _arrivals(MULTI_VARIABLE_SCENARIOS, row, seed, n, chaos)
    for dominated in (AD5(("x", "y")), AD6(("x", "y"))):
        holds, _strict = dominates_on(AD1(), dominated, arrivals)
        assert holds, (
            f"AD-1 >= {dominated.name} violated on a fault-mangled stream "
            f"of {len(arrivals)} arrivals"
        )


@settings(max_examples=30, deadline=None)
@given(rows, seeds, st.integers(5, 16), intensities)
def test_filter_guarantees_survive_faults(row, seed, n, chaos):
    """Theorems 5/7/9 preconditions: whatever stream the faults produce,
    AD-2 emits strictly ordered output, AD-3 consistent duplicate-free
    output, and AD-4 both."""
    arrivals = _arrivals(SINGLE_VARIABLE_SCENARIOS, row, seed, n, chaos)
    ordered = strict_orderedness_property("x")
    consistent = consistency_property("x")
    assert ordered(run_ad(AD2("x"), arrivals))
    assert consistent(run_ad(AD3("x"), arrivals))
    ad4_out = run_ad(AD4("x"), arrivals)
    assert ordered(ad4_out) and consistent(ad4_out)


@settings(max_examples=15, deadline=None)
@given(rows, seeds, st.integers(4, 10), intensities)
def test_multi_variable_guarantees_survive_faults(row, seed, n, chaos):
    """AD-5 guarantees orderedness, AD-6 orderedness and consistency, on
    arbitrary fault-mangled multi-variable streams."""
    arrivals = _arrivals(MULTI_VARIABLE_SCENARIOS, row, seed, n, chaos)
    variables = ["x", "y"]
    assert check_orderedness(run_ad(AD5(variables), arrivals), variables)
    ad6_out = run_ad(AD6(variables), arrivals)
    assert check_orderedness(ad6_out, variables)
    assert check_consistency_multi(ad6_out, variables)
