"""Conservation laws for the CountersTracer, cross-validated per run.

The kernel runs every trial to quiescence, so traced messages cannot be
left in flight: every ``link/send`` must resolve to a ``link/deliver`` or
a ``link/drop``, and every alert arriving at the AD must be displayed or
filtered.  These invariants tie the observability counters to the ground
truth that :func:`repro.analysis.metrics.collect_metrics` extracts from
the :class:`RunResult` — if either side miscounts, they diverge.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import collect_metrics
from repro.observability import CountersTracer
from repro.workloads.scenarios import (
    MULTI_VARIABLE_SCENARIOS,
    ROW_ORDER,
    SINGLE_VARIABLE_SCENARIOS,
    run_scenario,
)

rows = st.sampled_from(list(ROW_ORDER))
seeds = st.integers(0, 2**31)


def _traced_run(matrix, row, algorithm, seed, n, replication=2):
    scenarios = (
        MULTI_VARIABLE_SCENARIOS if matrix == "multi" else SINGLE_VARIABLE_SCENARIOS
    )
    tracer = CountersTracer()
    run = run_scenario(
        scenarios[row], algorithm, seed, n_updates=n,
        replication=replication, tracer=tracer,
    )
    return run, tracer.as_dict()


def _link_nodes(counters):
    return {
        key.split("/", 2)[2]
        for key in counters
        if key.startswith("link/")
    }


@settings(max_examples=30, deadline=None)
@given(rows, st.sampled_from(["pass", "AD-1", "AD-2", "AD-5"]), seeds,
       st.integers(4, 16))
def test_every_link_conserves_messages(row, algorithm, seed, n):
    matrix = "multi" if algorithm == "AD-5" else "single"
    _, counters = _traced_run(matrix, row, algorithm, seed, n)
    for node in _link_nodes(counters):
        sent = counters.get(f"link/send/{node}", 0)
        delivered = counters.get(f"link/deliver/{node}", 0)
        dropped = counters.get(f"link/drop/{node}", 0)
        assert sent == delivered + dropped, (
            f"{node}: send={sent} != deliver={delivered} + drop={dropped}"
        )


@settings(max_examples=30, deadline=None)
@given(rows, st.sampled_from(["AD-1", "AD-2", "AD-3", "AD-4"]), seeds,
       st.integers(4, 16))
def test_ad_conserves_alerts(row, algorithm, seed, n):
    _, counters = _traced_run("single", row, algorithm, seed, n)
    arrived = counters.get("ad/arrive/AD", 0)
    displayed = counters.get("ad/display/AD", 0)
    filtered = counters.get("ad/filter/AD", 0)
    assert arrived == displayed + filtered


@settings(max_examples=25, deadline=None)
@given(rows, seeds, st.integers(4, 16), st.integers(1, 3))
def test_counters_agree_with_collect_metrics(row, seed, n, replication):
    run, counters = _traced_run(
        "single", row, "AD-1", seed, n, replication=replication
    )
    metrics = collect_metrics(run)

    assert counters.get("ad/arrive/AD", 0) == metrics.alerts_arrived
    assert counters.get("ad/display/AD", 0) == metrics.alerts_displayed
    assert counters.get("ad/filter/AD", 0) == metrics.alerts_filtered

    # Per-CE: updates incorporated and alerts raised, by node name.
    for index, received in enumerate(metrics.updates_received_per_ce):
        node = f"CE{index + 1}"
        assert counters.get(f"ce/update-received/{node}", 0) == received
    for index, generated in enumerate(metrics.alerts_generated_per_ce):
        node = f"CE{index + 1}"
        assert counters.get(f"ce/alert-raised/{node}", 0) == generated

    # Every DM broadcast fans out over one front link per CE, so total
    # front-link sends = updates_sent * replication.
    front_sends = sum(
        count
        for key, count in counters.items()
        if key.startswith("link/send/DM-")
    )
    assert front_sends == metrics.updates_sent * replication

    # Front-link deliveries land at the CEs; nothing else feeds them.
    front_delivers = sum(
        count
        for key, count in counters.items()
        if key.startswith("link/deliver/DM-")
    )
    assert front_delivers == sum(metrics.updates_received_per_ce)

    # Back links are lossless: every CE alert reaches the AD.
    back_sends = sum(
        count
        for key, count in counters.items()
        if key.startswith("link/send/CE") and key.endswith("->AD")
    )
    assert back_sends == sum(metrics.alerts_generated_per_ce)
    assert back_sends == metrics.alerts_arrived
