"""Differential testing: array kernel vs. the event-object oracle.

The struct-of-arrays executor (:mod:`repro.simulation.arraykernel`) is
only allowed to exist because it is *indistinguishable* from the object
kernel: same property verdicts, same observability counters, bit-identical
``repro.trace/1`` recordings, for every ``TrialSpec × FaultProfile``.
Hypothesis drives random specs — scenario row, algorithm, seed, reading
count, replication, chaos intensity — through both kernels and asserts
exactly that.  Any divergence here voids every benchmark number, so these
tests are the PR's real deliverable; the speedup is just a side effect.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.engine.spec import TrialSpec
from repro.faults import DEFAULT_CHAOS_PROFILE
from repro.observability import record_trial
from repro.workloads.scenarios import ROW_ORDER

rows = st.sampled_from(list(ROW_ORDER))
seeds = st.integers(0, 2**31)
algorithms_single = st.sampled_from(["pass", "AD-1", "AD-2", "AD-3", "AD-4"])
algorithms_multi = st.sampled_from(["pass", "AD-1", "AD-5", "AD-6"])
replications = st.integers(1, 3)
intensities = st.floats(0.25, 3.0, allow_nan=False, allow_infinity=False)


def _both_kernels(spec: TrialSpec) -> tuple[TrialSpec, TrialSpec]:
    return replace(spec, kernel="object"), replace(spec, kernel="array")


def _assert_reports_identical(spec: TrialSpec) -> None:
    object_spec, array_spec = _both_kernels(spec)
    object_report = object_spec.execute()
    array_report = array_spec.execute()
    assert object_report == array_report
    assert object_report.summary == array_report.summary
    # counters/delivery are compare=False on PropertyReport, so the
    # dataclass equality above does not cover them.
    assert object_report.counters == array_report.counters
    assert object_report.delivery == array_report.delivery


@settings(max_examples=20, deadline=None)
@given(rows, algorithms_single, seeds, st.integers(4, 14), replications)
def test_single_variable_reports_identical(row, algorithm, seed, n, replication):
    _assert_reports_identical(
        TrialSpec(
            "single", row, algorithm, seed, n,
            replication=replication, collect_counters=True,
        )
    )


@settings(max_examples=10, deadline=None)
@given(rows, algorithms_multi, seeds, st.integers(4, 8), replications)
def test_multi_variable_reports_identical(row, algorithm, seed, n, replication):
    _assert_reports_identical(
        TrialSpec(
            "multi", row, algorithm, seed, n,
            replication=replication, collect_counters=True,
        )
    )


@settings(max_examples=15, deadline=None)
@given(rows, algorithms_single, seeds, st.integers(4, 12), intensities)
def test_fault_injected_reports_identical(row, algorithm, seed, n, chaos):
    """The full fault surface — crashes, outages, burst loss, duplication,
    delay spikes — must be executed identically by both kernels."""
    _assert_reports_identical(
        TrialSpec(
            "single", row, algorithm, seed, n,
            faults=DEFAULT_CHAOS_PROFILE.scaled(chaos),
            collect_counters=True, collect_delivery=True,
        )
    )


@settings(max_examples=8, deadline=None)
@given(rows, algorithms_multi, seeds, st.integers(4, 8), intensities)
def test_multi_variable_fault_reports_identical(row, algorithm, seed, n, chaos):
    _assert_reports_identical(
        TrialSpec(
            "multi", row, algorithm, seed, n,
            faults=DEFAULT_CHAOS_PROFILE.scaled(chaos),
            collect_counters=True, collect_delivery=True,
        )
    )


@settings(max_examples=12, deadline=None)
@given(rows, algorithms_single, seeds, st.integers(4, 12))
def test_traces_bit_identical(row, algorithm, seed, n):
    """Recorded traces must match line for line: the traced array path
    replays the object kernel's exact event schedule, so even event
    *ordering* within an instant is preserved."""
    object_spec, array_spec = _both_kernels(
        TrialSpec("single", row, algorithm, seed, n)
    )
    object_trace = record_trial(object_spec)
    array_trace = record_trial(array_spec)
    assert object_trace.event_lines() == array_trace.event_lines()
    assert object_trace.metrics == array_trace.metrics


@settings(max_examples=8, deadline=None)
@given(rows, seeds, st.integers(4, 10), intensities)
def test_fault_injected_traces_bit_identical(row, seed, n, chaos):
    object_spec, array_spec = _both_kernels(
        TrialSpec(
            "single", row, "AD-4", seed, n,
            faults=DEFAULT_CHAOS_PROFILE.scaled(chaos),
        )
    )
    object_trace = record_trial(object_spec)
    array_trace = record_trial(array_spec)
    assert any(event.stage == "fault" for event in array_trace.events)
    assert object_trace.event_lines() == array_trace.event_lines()
    assert object_trace.metrics == array_trace.metrics
