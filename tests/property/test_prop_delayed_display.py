"""Property-based tests for the §4.2 delayed-display AD."""

from hypothesis import given, settings, strategies as st

from repro.displayers.delayed import DelayedDisplayAD
from repro.simulation.kernel import Kernel
from tests.conftest import alert_deg1


@st.composite
def timed_streams(draw):
    """(arrival_time, seqno) pairs with non-decreasing times."""
    n = draw(st.integers(0, 15))
    gaps = draw(st.lists(st.floats(0.0, 10.0), min_size=n, max_size=n))
    seqnos = draw(st.lists(st.integers(1, 20), min_size=n, max_size=n))
    times = []
    current = 0.0
    for gap in gaps:
        current += gap
        times.append(current)
    return list(zip(times, seqnos))


def run_delayed(schedule, timeout):
    kernel = Kernel()
    ad = DelayedDisplayAD(kernel, "x", timeout=timeout)
    for time, seqno in schedule:
        kernel.schedule_at(time, lambda s=seqno: ad.receive(alert_deg1(s)))
    kernel.run()
    ad.flush()
    return ad


@settings(max_examples=80, deadline=None)
@given(timed_streams(), st.floats(0.0, 30.0))
def test_displays_exactly_the_distinct_arrivals(schedule, timeout):
    """Nothing is dropped except exact duplicates, at any timeout."""
    ad = run_delayed(schedule, timeout)
    displayed_seqnos = sorted(a.seqno("x") for a in ad.displayed)
    distinct = sorted({seqno for _, seqno in schedule})
    assert displayed_seqnos == distinct


@settings(max_examples=80, deadline=None)
@given(timed_streams())
def test_infinite_timeout_fully_ordered(schedule):
    ad = run_delayed(schedule, float("inf"))
    seqnos = [a.seqno("x") for a in ad.displayed]
    assert seqnos == sorted(seqnos)


@settings(max_examples=80, deadline=None)
@given(timed_streams(), st.floats(0.0, 30.0))
def test_no_alert_delayed_beyond_timeout(schedule, timeout):
    """Every displayed alert appears within timeout of its arrival
    (up to the flush at end-of-run, which we exclude by only checking
    alerts displayed before the kernel drained)."""
    kernel = Kernel()
    ad = DelayedDisplayAD(kernel, "x", timeout=timeout)
    arrival_time = {}
    for time, seqno in schedule:
        def deliver(s=seqno, t=time):
            alert = alert_deg1(s)
            arrival_time.setdefault(s, t)
            ad.receive(alert)

        kernel.schedule_at(time, deliver)
    kernel.run()
    # Before flush: displayed alerts obey the deadline contract.
    for alert, shown_at in zip(ad.displayed, ad._display_times):
        seqno = alert.seqno("x")
        assert shown_at <= arrival_time[seqno] + timeout + 1e-9


@settings(max_examples=60, deadline=None)
@given(timed_streams())
def test_zero_timeout_preserves_arrival_order_of_distinct(schedule):
    """t=0 displays (distinct) alerts in arrival order — no reordering."""
    ad = run_delayed(schedule, 0.0)
    seen = set()
    expected = []
    for _, seqno in sorted(schedule, key=lambda pair: pair[0]):
        if seqno not in seen:
            seen.add(seqno)
            expected.append(seqno)
    # Ties in arrival time may be locally sorted by the buffer; compare as
    # multisets per timestamp group instead of exact order.
    assert sorted(a.seqno("x") for a in ad.displayed) == sorted(expected)
