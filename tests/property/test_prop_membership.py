"""Property-based tests for the dynamic-membership lifecycle.

Three contracts keep membership honest:

1. **Determinism under churn** — a run with crash/recovery faults *and*
   the detect → suspect → recover → catch-up lifecycle active must stay
   record→replay bit-identical, on both kernels: the whole lifecycle is
   planned analytically (:func:`repro.membership.registry.plan_membership`
   consumes no randomness), so nothing about recovery may perturb the
   RNG streams or the event schedule.
2. **Instant recovery is invisible** — as detection latency and catch-up
   cost go to zero (``detection_timeout=0``, ``catchup_latency=0``,
   ``retry_backoff=0``, log-sourced state transfer), the property
   verdicts must equal the static-membership baseline under the same
   crash faults: recovery can only *restore* guarantees, never
   manufacture violations the crash alone would not have produced.
3. **Kernel indistinguishability** — the struct-of-arrays executor must
   produce identical reports, counters, churn digests and bit-identical
   traces for membership-bearing specs, exactly as it already must for
   the fault surface (:mod:`tests.property.test_prop_kernel_differential`).
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.engine.spec import TrialSpec
from repro.faults import DEFAULT_CHURN_PROFILE
from repro.faults.plan import FaultProfile
from repro.membership import MembershipConfig
from repro.observability import record_trial, replay_trace
from repro.workloads.scenarios import ROW_ORDER

rows = st.sampled_from(list(ROW_ORDER))
seeds = st.integers(0, 2**31)
algorithms_single = st.sampled_from(["pass", "AD-1", "AD-2", "AD-3", "AD-4"])
algorithms_multi = st.sampled_from(["pass", "AD-1", "AD-5", "AD-6"])
intensities = st.floats(0.25, 3.0, allow_nan=False, allow_infinity=False)

#: Membership configs spanning the regimes that matter: impatient and
#: patient detectors, instant through slow catch-up, every source policy.
memberships = st.builds(
    MembershipConfig,
    heartbeat_interval=st.sampled_from((2.5, 5.0, 10.0)),
    detection_timeout=st.floats(0.0, 8.0, allow_nan=False),
    suspicion_threshold=st.integers(1, 3),
    catchup_latency=st.floats(0.0, 4.0, allow_nan=False),
    retry_backoff=st.floats(0.0, 2.0, allow_nan=False),
    catchup_source=st.sampled_from(("peer-then-log", "peer", "log", "none")),
)

#: CE-crash-only faults: the divergence the lifecycle is meant to heal,
#: without link noise masking the comparison in the baseline property.
CE_CRASH_FAULTS = FaultProfile(ce_crash_rate=0.02, ce_mean_repair=25.0)

#: Zero-latency lifecycle: detect immediately, catch up for free from
#: the always-available broadcast log.
INSTANT_RECOVERY = MembershipConfig(
    detection_timeout=0.0,
    suspicion_threshold=1,
    catchup_latency=0.0,
    retry_backoff=0.0,
    catchup_source="log",
)


@settings(max_examples=15, deadline=None)
@given(rows, algorithms_single, seeds, st.integers(4, 12), intensities, memberships)
def test_churn_replay_is_bit_identical(row, algorithm, seed, n, chaos, membership):
    """Record→replay stays bit-identical with churn faults *and* the
    membership lifecycle both active (object kernel)."""
    spec = TrialSpec(
        "single", row, algorithm, seed, n,
        replication=2,
        faults=DEFAULT_CHURN_PROFILE.scaled(chaos),
        membership=membership,
    )
    trace = record_trial(spec)
    # The planned lifecycle is part of the record ...
    assert any(event.stage == "membership" for event in trace.events)
    # ... and the replay (spec reconstructed from the header dict,
    # MembershipConfig included) reproduces every event bit for bit.
    result = replay_trace(trace)
    assert result.identical, result.describe()


@settings(max_examples=8, deadline=None)
@given(rows, algorithms_multi, seeds, st.integers(4, 8), intensities, memberships)
def test_multi_variable_churn_replay_is_bit_identical(
    row, algorithm, seed, n, chaos, membership
):
    spec = TrialSpec(
        "multi", row, algorithm, seed, n,
        replication=2,
        faults=DEFAULT_CHURN_PROFILE.scaled(chaos),
        membership=membership,
    )
    result = replay_trace(record_trial(spec))
    assert result.identical, result.describe()


@settings(max_examples=8, deadline=None)
@given(rows, seeds, st.integers(4, 10), intensities, memberships)
def test_churn_replay_survives_a_file_round_trip(
    tmp_path_factory, row, seed, n, chaos, membership
):
    """The MembershipConfig rides the JSONL header: serialise → parse →
    replay must re-plan the same lifecycle."""
    from repro.observability import load_trace

    spec = TrialSpec(
        "single", row, "AD-2", seed, n,
        replication=2,
        faults=DEFAULT_CHURN_PROFILE.scaled(chaos),
        membership=membership,
    )
    trace = record_trial(spec)
    path = tmp_path_factory.mktemp("traces") / "churn.jsonl"
    trace.write(path)
    loaded = load_trace(path)
    assert loaded.event_lines() == trace.event_lines()
    assert replay_trace(loaded).identical


@settings(max_examples=20, deadline=None)
@given(rows, algorithms_single, seeds, st.integers(4, 14))
def test_instant_recovery_matches_static_membership_verdicts(
    row, algorithm, seed, n
):
    """Zero-cost detection + catch-up yields the same property verdicts
    as running without membership at all, under the same crash faults."""
    base = TrialSpec(
        "single", row, algorithm, seed, n,
        replication=1, front_loss=0.0, faults=CE_CRASH_FAULTS,
    )
    recovered = replace(base, membership=INSTANT_RECOVERY)
    base_report = base.execute()
    recovered_report = recovered.execute()
    assert base_report.summary == recovered_report.summary
    # The lifecycle ran (a churn digest is attached) — the equality above
    # is not vacuous whenever the faults materialized a crash.
    assert recovered_report.churn is not None
    assert base_report.churn is None


def _assert_reports_identical(spec: TrialSpec) -> None:
    object_report = replace(spec, kernel="object").execute()
    array_report = replace(spec, kernel="array").execute()
    assert object_report == array_report
    assert object_report.summary == array_report.summary
    assert object_report.counters == array_report.counters
    assert object_report.churn == array_report.churn


@settings(max_examples=12, deadline=None)
@given(rows, algorithms_single, seeds, st.integers(4, 12), intensities, memberships)
def test_membership_reports_identical_across_kernels(
    row, algorithm, seed, n, chaos, membership
):
    """Both kernels execute the same planned lifecycle: identical
    verdicts, counters and churn digests."""
    _assert_reports_identical(
        TrialSpec(
            "single", row, algorithm, seed, n,
            replication=2,
            faults=DEFAULT_CHURN_PROFILE.scaled(chaos),
            membership=membership,
            collect_counters=True,
        )
    )


@settings(max_examples=6, deadline=None)
@given(rows, algorithms_multi, seeds, st.integers(4, 8), intensities, memberships)
def test_multi_variable_membership_reports_identical_across_kernels(
    row, algorithm, seed, n, chaos, membership
):
    _assert_reports_identical(
        TrialSpec(
            "multi", row, algorithm, seed, n,
            replication=2,
            faults=DEFAULT_CHURN_PROFILE.scaled(chaos),
            membership=membership,
            collect_counters=True,
        )
    )


@settings(max_examples=8, deadline=None)
@given(rows, seeds, st.integers(4, 10), intensities, memberships)
def test_membership_traces_bit_identical_across_kernels(
    row, seed, n, chaos, membership
):
    """The traced array path must replay the object kernel's exact event
    schedule — rejoin and catch-up events included."""
    spec = TrialSpec(
        "single", row, "AD-1", seed, n,
        replication=2,
        faults=DEFAULT_CHURN_PROFILE.scaled(chaos),
        membership=membership,
    )
    object_trace = record_trial(replace(spec, kernel="object"))
    array_trace = record_trial(replace(spec, kernel="array"))
    assert object_trace.event_lines() == array_trace.event_lines()
    assert object_trace.metrics == array_trace.metrics
