"""Property-based tests for trace recording and deterministic replay.

Determinism is the kernel's core contract — identical ``(seed, config)``
must produce identical runs.  Until now only the golden-run fixtures
checked it, indirectly, at a handful of pinned seeds.  Here Hypothesis
drives the whole record→replay loop over random scenario/seed pairs and
asserts the replay is *bit-identical*: same canonical JSONL event lines,
in the same order, and the same final :class:`RunMetrics`.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.spec import TrialSpec
from repro.faults import DEFAULT_CHAOS_PROFILE
from repro.observability import load_trace, record_trial, replay_trace
from repro.workloads.scenarios import ROW_ORDER

matrices = st.sampled_from(["single", "multi"])
rows = st.sampled_from(list(ROW_ORDER))
seeds = st.integers(0, 2**31)
algorithms_single = st.sampled_from(["pass", "AD-1", "AD-2", "AD-3", "AD-4"])
algorithms_multi = st.sampled_from(["pass", "AD-1", "AD-5", "AD-6"])
#: Chaos intensities guaranteeing a non-clean profile (crashes, outages,
#: burst loss, duplication and delay spikes all active).
intensities = st.floats(0.25, 3.0, allow_nan=False, allow_infinity=False)


def _spec(matrix: str, row: str, algorithm: str, seed: int, n: int) -> TrialSpec:
    return TrialSpec(matrix, row, algorithm, seed, n)


@settings(max_examples=25, deadline=None)
@given(rows, algorithms_single, seeds, st.integers(4, 14))
def test_single_variable_replay_is_bit_identical(row, algorithm, seed, n):
    trace = record_trial(_spec("single", row, algorithm, seed, n))
    result = replay_trace(trace)
    assert result.events_identical, result.describe()
    assert result.metrics_identical, result.describe()
    assert result.recorded_events == result.replayed_events


@settings(max_examples=10, deadline=None)
@given(rows, algorithms_multi, seeds, st.integers(4, 8))
def test_multi_variable_replay_is_bit_identical(row, algorithm, seed, n):
    trace = record_trial(_spec("multi", row, algorithm, seed, n))
    result = replay_trace(trace)
    assert result.identical, result.describe()


@settings(max_examples=10, deadline=None)
@given(rows, seeds, st.integers(4, 12))
def test_replay_survives_a_file_round_trip(tmp_path_factory, row, seed, n):
    """Serialise → parse → replay must be as bit-identical as in-memory."""
    trace = record_trial(_spec("single", row, "AD-2", seed, n))
    path = tmp_path_factory.mktemp("traces") / "run.jsonl"
    trace.write(path)
    loaded = load_trace(path)
    assert loaded.event_lines() == trace.event_lines()
    assert loaded.metrics == trace.metrics
    assert replay_trace(loaded).identical


@settings(max_examples=15, deadline=None)
@given(rows, algorithms_single, seeds, st.integers(4, 12), intensities)
def test_fault_injected_replay_is_bit_identical(row, algorithm, seed, n, chaos):
    """Record→replay stays bit-identical with the full fault model on:
    crashes, link outages, burst loss, duplication and delay spikes are
    all re-materialized from the spec alone."""
    spec = TrialSpec(
        "single", row, algorithm, seed, n,
        faults=DEFAULT_CHAOS_PROFILE.scaled(chaos),
    )
    trace = record_trial(spec)
    # The injected fault surface must itself be part of the record ...
    assert any(event.stage == "fault" for event in trace.events)
    # ... and the replay (spec reconstructed from the header dict,
    # FaultProfile included) must reproduce every event bit for bit.
    result = replay_trace(trace)
    assert result.identical, result.describe()


@settings(max_examples=8, deadline=None)
@given(rows, algorithms_multi, seeds, st.integers(4, 8), intensities)
def test_multi_variable_fault_replay_is_bit_identical(row, algorithm, seed, n, chaos):
    spec = TrialSpec(
        "multi", row, algorithm, seed, n,
        faults=DEFAULT_CHAOS_PROFILE.scaled(chaos),
    )
    result = replay_trace(record_trial(spec))
    assert result.identical, result.describe()


@settings(max_examples=8, deadline=None)
@given(rows, seeds, st.integers(4, 10), intensities)
def test_fault_replay_survives_a_file_round_trip(
    tmp_path_factory, row, seed, n, chaos
):
    """The FaultProfile rides the JSONL header: serialise → parse →
    replay must re-inject the same faults."""
    spec = TrialSpec(
        "single", row, "AD-4", seed, n,
        faults=DEFAULT_CHAOS_PROFILE.scaled(chaos),
    )
    trace = record_trial(spec)
    path = tmp_path_factory.mktemp("traces") / "chaos.jsonl"
    trace.write(path)
    loaded = load_trace(path)
    assert loaded.event_lines() == trace.event_lines()
    assert replay_trace(loaded).identical


@settings(max_examples=15, deadline=None)
@given(rows, seeds, st.integers(4, 12))
def test_tracing_never_perturbs_the_run(row, seed, n):
    """A traced run and an untraced run of the same spec report the same
    properties — observability is strictly read-only."""
    spec = _spec("single", row, "AD-1", seed, n)
    untraced = spec.execute()
    trace = record_trial(spec)
    assert trace.metrics["alerts_displayed"] >= 0
    traced_report = spec.execute()  # execute() itself never traces here
    assert untraced.summary == traced_report.summary
