"""Property-based tests for the alert-quality layer and the adaptive
displayer.

Four families of invariants:

* **Conservation** — every arrival is displayed or filtered, and every
  displayed alert is exactly one of detection / duplicate / false alert,
  at any loss, fault intensity, or algorithm (including adaptive and the
  diversity traffic shapes).
* **Bounds** — precision and recall live in [0, 1]; one latency sample
  per detection, none negative (an alert cannot be displayed before its
  triggering update was broadcast).
* **Ideal-conditions recall** — with zero front loss and no faults every
  CE receives the whole broadcast and emits the ideal alert sequence in
  order over FIFO links, so first arrivals of event keys are key-ordered
  and *every* single-variable algorithm detects every expected event.
* **Adaptive determinism** — adaptive runs are bit-identical across the
  object and array kernels, and record→replay through every service
  runtime byte-for-byte.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.engine.spec import SCENARIO_MATRICES, TrialSpec
from repro.faults import DEFAULT_CHAOS_PROFILE
from repro.service import check_conformance, default_runtimes, record_feed

single_rows = st.sampled_from(sorted(SCENARIO_MATRICES["single"]))
multi_rows = st.sampled_from(sorted(SCENARIO_MATRICES["multi"]))
seeds = st.integers(0, 2**31)
algorithms = st.sampled_from(
    ["pass", "AD-1", "AD-2", "AD-3", "AD-4", "adaptive"]
)
losses = st.floats(0.0, 0.8, allow_nan=False, allow_infinity=False)
intensities = st.one_of(
    st.just(0.0), st.floats(0.25, 2.5, allow_nan=False, allow_infinity=False)
)


def quality_of(spec: TrialSpec) -> dict:
    return replace(spec, collect_quality=True).execute().quality


@settings(max_examples=25, deadline=None)
@given(single_rows, algorithms, seeds, st.integers(4, 14), losses, intensities)
def test_conservation_and_bounds(row, algorithm, seed, n, loss, intensity):
    faults = DEFAULT_CHAOS_PROFILE.scaled(intensity) if intensity else None
    quality = quality_of(
        TrialSpec(
            "single", row, algorithm, seed, n,
            front_loss=loss, faults=faults,
        )
    )
    assert quality["displayed"] + quality["filtered"] == quality["arrivals"]
    assert (
        quality["detected"] + quality["duplicates"] + quality["false_alerts"]
        == quality["displayed"]
    )
    assert quality["missed"] == quality["expected"] - quality["detected"]
    assert 0.0 <= quality["precision"] <= 1.0
    assert 0.0 <= quality["recall"] <= 1.0
    assert len(quality["latency_samples"]) == quality["detected"]
    assert all(sample >= 0.0 for sample in quality["latency_samples"])


@settings(max_examples=15, deadline=None)
@given(multi_rows, st.sampled_from(["AD-5", "AD-6", "adaptive"]),
       seeds, st.integers(4, 10), losses)
def test_conservation_multi_variable(row, algorithm, seed, n, loss):
    quality = quality_of(
        TrialSpec("multi", row, algorithm, seed, n, front_loss=loss)
    )
    assert quality["displayed"] + quality["filtered"] == quality["arrivals"]
    assert (
        quality["detected"] + quality["duplicates"] + quality["false_alerts"]
        == quality["displayed"]
    )
    assert 0.0 <= quality["precision"] <= 1.0
    assert 0.0 <= quality["recall"] <= 1.0


@settings(max_examples=25, deadline=None)
@given(single_rows, algorithms, seeds, st.integers(4, 14), st.integers(1, 3))
def test_zero_loss_zero_fault_recall_is_total(row, algorithm, seed, n, repl):
    quality = quality_of(
        TrialSpec(
            "single", row, algorithm, seed, n,
            replication=repl, front_loss=0.0,
        )
    )
    assert quality["recall"] == 1.0
    assert quality["false_alerts"] == 0  # lossless histories never lie


@settings(max_examples=12, deadline=None)
@given(single_rows, seeds, st.integers(4, 14), losses, intensities)
def test_adaptive_is_kernel_identical(row, seed, n, loss, intensity):
    faults = DEFAULT_CHAOS_PROFILE.scaled(intensity) if intensity else None
    spec = TrialSpec(
        "single", row, "adaptive", seed, n,
        front_loss=loss, faults=faults,
        collect_quality=True, collect_counters=True,
    )
    object_report = replace(spec, kernel="object").execute()
    array_report = replace(spec, kernel="array").execute()
    assert object_report == array_report
    assert object_report.quality == array_report.quality
    assert object_report.counters == array_report.counters


@settings(max_examples=6, deadline=None)
@given(multi_rows, seeds, st.integers(4, 8))
def test_adaptive_is_kernel_identical_multi(row, seed, n):
    spec = TrialSpec(
        "multi", row, "adaptive", seed, n, collect_quality=True
    )
    assert (
        replace(spec, kernel="object").execute()
        == replace(spec, kernel="array").execute()
    )


@settings(max_examples=4, deadline=None)
@given(single_rows, seeds, st.integers(4, 10), losses)
def test_adaptive_record_replay_conforms_across_runtimes(row, seed, n, loss):
    spec = TrialSpec("single", row, "adaptive", seed, n, front_loss=loss)
    feed = record_feed(spec)
    report = check_conformance(feed, default_runtimes())
    assert report.identical, {
        r.runtime: r.digest() for r in report.results
    }
