"""Property-based round trip: expression AST → text → AST.

Random condition expressions are rendered with
:func:`repro.core.serialization.expression_to_text`, re-parsed with the
whitelisted grammar, and both versions are evaluated against random
histories — behavioural equality is the round-trip contract.
"""

from hypothesis import given, settings, strategies as st

from repro.core.expressions import H
from repro.core.history import HistorySet
from repro.core.parser import parse_expression
from repro.core.serialization import expression_to_text
from repro.core.update import Update

VARS = ("x", "y")
MAX_DEGREE = 3


@st.composite
def numeric_exprs(draw, depth=0):
    choice = draw(st.integers(0, 5 if depth < 3 else 1))
    if choice == 0:
        return st.just(None), draw(
            st.floats(-100.0, 100.0).map(lambda v: round(v, 2))
        )
    if choice == 1:
        var = draw(st.sampled_from(VARS))
        index = -draw(st.integers(0, MAX_DEGREE - 1))
        field = draw(st.sampled_from(["value", "seqno"]))
        return st.just(None), getattr(H[var][index], field)
    left = draw(numeric_exprs(depth + 1))[1]
    right = draw(numeric_exprs(depth + 1))[1]
    if choice == 2:
        op = draw(st.sampled_from(["+", "-", "*"]))
        result = {"+": lambda: left + right, "-": lambda: left - right,
                  "*": lambda: left * right}[op]()
        return st.just(None), result
    if choice == 3:
        inner = draw(numeric_exprs(depth + 1))[1]
        return st.just(None), -_lift(inner)
    if choice == 4:
        inner = draw(numeric_exprs(depth + 1))[1]
        return st.just(None), abs(_lift(inner))
    return st.just(None), left


def _lift(value):
    from repro.core.expressions import Const, Expr

    if isinstance(value, Expr):
        return value
    return Const(value)


@st.composite
def bool_exprs(draw, depth=0):
    choice = draw(st.integers(0, 3 if depth < 2 else 0))
    if choice == 0:
        left = _lift(draw(numeric_exprs())[1])
        right = _lift(draw(numeric_exprs())[1])
        op = draw(st.sampled_from([">", ">=", "<", "<=", "==", "!="]))
        import operator as _op
        from repro.core.expressions import Compare

        return Compare(op, left, right)
    left = draw(bool_exprs(depth + 1))
    if choice == 1:
        return left & draw(bool_exprs(depth + 1))
    if choice == 2:
        return left | draw(bool_exprs(depth + 1))
    return ~left


def full_history_set():
    histories = HistorySet({var: MAX_DEGREE for var in VARS})
    return histories


@st.composite
def filled_histories(draw):
    histories = full_history_set()
    for var in VARS:
        seqno = 0
        for _ in range(MAX_DEGREE):
            seqno += draw(st.integers(1, 3))
            value = draw(st.floats(-100.0, 100.0).map(lambda v: round(v, 2)))
            histories.push(Update(var, seqno, value))
    return histories


@settings(max_examples=120, deadline=None)
@given(bool_exprs(), filled_histories())
def test_text_roundtrip_behavioural_equality(expr, histories):
    text = expression_to_text(expr)
    reparsed = parse_expression(text)
    try:
        expected = expr.evaluate(histories)
    except ZeroDivisionError:
        return  # division only enters via literals; skip degenerate cases
    assert reparsed.evaluate(histories) == expected


@settings(max_examples=120, deadline=None)
@given(bool_exprs())
def test_text_roundtrip_preserves_degrees(expr):
    text = expression_to_text(expr)
    reparsed = parse_expression(text)
    assert reparsed.degrees() == expr.degrees()


@settings(max_examples=120, deadline=None)
@given(bool_exprs())
def test_text_normalises_in_one_pass(expr):
    """One parse/render round normalises: further rounds are fixpoints.

    (The raw AST may contain denormal shapes like ``-(-0)`` that the
    first round folds; after that the text must be stable forever.)
    """
    once = expression_to_text(parse_expression(expression_to_text(expr)))
    twice = expression_to_text(parse_expression(once))
    assert twice == once
