"""Property-based cross-validation of the fast consistency checkers
against the exhaustive brute-force oracle.

The constraint-based checkers (Received/Missed for single variable,
member-precedence graph for multi variable) are the load-bearing novel
code of this reproduction — these tests check them, verdict for verdict,
against an oracle that literally enumerates every candidate witness U′.
Instances are kept tiny so the oracle stays fast.

The differential tests at the bottom cross-validate a different pair of
paths: the :class:`~repro.engine.core.TrialEngine` spec pipeline against
a direct :func:`~repro.workloads.scenarios.run_scenario` call, on
fault-laden specs — same verdicts, same observability counters, same
delivery stats, whichever road a trial takes.
"""

from dataclasses import replace as dc_replace

from hypothesis import given, settings, strategies as st

from repro.core.condition import PredicateCondition, c2, cm
from repro.core.evaluator import ConditionEvaluator
from repro.core.reference import combine_received, interleavings
from repro.core.update import Update
from repro.props.consistency import (
    check_consistency_bruteforce,
    check_consistency_multi,
    check_consistency_single,
)


@st.composite
def single_var_runs(draw):
    """Random DM output + two random received subsequences, c2 condition."""
    n = draw(st.integers(2, 6))
    values = draw(
        st.lists(
            st.integers(0, 1000).map(float), min_size=n, max_size=n
        )
    )
    sent = [Update("x", i + 1, v) for i, v in enumerate(values)]
    keep1 = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    keep2 = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    u1 = [u for u, k in zip(sent, keep1) if k]
    u2 = [u for u, k in zip(sent, keep2) if k]
    return u1, u2


@settings(max_examples=60, deadline=None)
@given(single_var_runs(), st.randoms(use_true_random=False))
def test_single_checker_matches_oracle(run, rng):
    u1, u2 = run
    condition = c2(delta=150.0)
    a1 = ConditionEvaluator(condition, "CE1").ingest_all(u1)
    a2 = ConditionEvaluator(condition, "CE2").ingest_all(u2)
    alerts = a1 + a2
    rng.shuffle(alerts)
    # A random displayed subset (what some AD might have passed through):
    displayed = [a for a in alerts if rng.random() < 0.8]
    per_var = combine_received([u1, u2], ["x"])
    fast = bool(check_consistency_single(displayed, "x"))
    oracle = bool(
        check_consistency_bruteforce(displayed, condition, per_var)
    )
    assert fast == oracle


@st.composite
def multi_var_runs(draw):
    """Random 2-variable values; each CE sees its own interleaving."""
    nx = draw(st.integers(1, 3))
    ny = draw(st.integers(1, 3))
    x_vals = draw(st.lists(st.integers(0, 400).map(float), min_size=nx, max_size=nx))
    y_vals = draw(st.lists(st.integers(0, 400).map(float), min_size=ny, max_size=ny))
    xs = [Update("x", i + 1, v) for i, v in enumerate(x_vals)]
    ys = [Update("y", i + 1, v) for i, v in enumerate(y_vals)]
    all_inter = list(interleavings({"x": xs, "y": ys}))
    i1 = draw(st.integers(0, len(all_inter) - 1))
    i2 = draw(st.integers(0, len(all_inter) - 1))
    return xs, ys, all_inter[i1], all_inter[i2]


@settings(max_examples=50, deadline=None)
@given(multi_var_runs(), st.randoms(use_true_random=False))
def test_multi_checker_matches_oracle_nonhistorical(run, rng):
    xs, ys, t1, t2 = run
    condition = cm(gap=100.0)
    a1 = ConditionEvaluator(condition, "CE1").ingest_all(t1)
    a2 = ConditionEvaluator(condition, "CE2").ingest_all(t2)
    alerts = a1 + a2
    rng.shuffle(alerts)
    displayed = [a for a in alerts if rng.random() < 0.8]
    per_var = {"x": xs, "y": ys}
    fast = bool(check_consistency_multi(displayed, ["x", "y"]))
    oracle = bool(
        check_consistency_bruteforce(displayed, condition, per_var)
    )
    assert fast == oracle


def _direct_report(spec):
    """Re-run a spec by hand: scenario resolution, tracer, fault profile
    and delivery stats wired explicitly, bypassing TrialSpec.execute."""
    from repro.analysis.metrics import delivery_stats
    from repro.observability.tracer import CountersTracer
    from repro.workloads.scenarios import run_scenario

    tracer = CountersTracer()
    run = run_scenario(
        spec.resolve_scenario(),
        spec.algorithm,
        spec.seed,
        n_updates=spec.n_updates,
        replication=spec.replication,
        tracer=tracer,
        faults=spec.faults,
    )
    stats = delivery_stats(run)
    return dc_replace(
        run.evaluate_properties(),
        counters=tracer.as_dict(),
        delivery={
            "expected": stats.expected,
            "delivered": stats.delivered,
            "extraneous": stats.extraneous,
        },
    )


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from(["lossless", "non-historical", "aggressive"]),
    st.sampled_from(["AD-1", "AD-2", "AD-3", "AD-4"]),
    st.integers(0, 2**31),
    st.integers(4, 14),
    st.floats(0.0, 3.0, allow_nan=False, allow_infinity=False),
)
def test_engine_and_direct_paths_agree_under_faults(
    row, algorithm, seed, n, chaos
):
    """Differential: the memoized TrialEngine path and a direct simulation
    of the same fault-laden spec report identical verdicts, counters and
    delivery stats."""
    from repro.engine import TrialEngine
    from repro.engine.spec import TrialSpec
    from repro.faults import DEFAULT_CHAOS_PROFILE

    faults = DEFAULT_CHAOS_PROFILE.scaled(chaos)
    if faults.is_clean:
        faults = None
    spec = TrialSpec(
        "single", row, algorithm, seed, n,
        faults=faults, collect_counters=True, collect_delivery=True,
    )
    (engine_report,) = TrialEngine(processes=1).run([spec])
    direct_report = _direct_report(spec)
    assert engine_report == direct_report  # verdict equality
    assert engine_report.counters == direct_report.counters
    assert engine_report.delivery == direct_report.delivery


def _historical_condition():
    """Degree-2-in-x two-variable condition with value-free truth.

    Truth depends only on seqnos so the oracle and checker see identical
    trigger behaviour regardless of values: triggers when the x-history
    heads sum with the y-head to an even number (arbitrary but stable).
    """

    def predicate(h):
        return (h["x"][0].seqno + h["y"][0].seqno) % 2 == 0

    return PredicateCondition("hist2", {"x": 2, "y": 1}, predicate)


@settings(max_examples=40, deadline=None)
@given(multi_var_runs(), st.randoms(use_true_random=False))
def test_multi_checker_matches_oracle_historical(run, rng):
    xs, ys, t1, t2 = run
    condition = _historical_condition()
    a1 = ConditionEvaluator(condition, "CE1").ingest_all(t1)
    a2 = ConditionEvaluator(condition, "CE2").ingest_all(t2)
    alerts = a1 + a2
    rng.shuffle(alerts)
    displayed = [a for a in alerts if rng.random() < 0.8]
    per_var = {"x": xs, "y": ys}
    fast = bool(check_consistency_multi(displayed, ["x", "y"]))
    oracle = bool(
        check_consistency_bruteforce(displayed, condition, per_var)
    )
    assert fast == oracle
