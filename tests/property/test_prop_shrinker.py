"""Property-based laws of the full-simulator shrinker.

:func:`repro.fuzz.shrink.shrink_spec` is a pure function of
``(spec, target)`` — it consumes no RNG and re-runs the deterministic
simulator for every candidate — so it must obey three laws, checked here
over Hypothesis-driven violating inputs:

* **soundness** — the shrunk spec still violates the same target
  property under full simulation, and never grew on any axis;
* **idempotence** — shrinking a shrunk witness is a fixpoint (the
  1-minimality claim, restated: no candidate step applies twice);
* **replay-stability** — reconstructing the witness spec from its
  recorded ``repro.trace/1`` header and shrinking *that* yields the
  bit-identical result, so a witness shipped as a trace file shrinks
  the same everywhere.

Violating inputs are found by a short forward seed-scan from a random
starting point; Hypothesis varies the start, the reading count and the
target property.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.analysis.witness import violates
from repro.engine.spec import TrialSpec
from repro.fuzz import shrink_spec
from repro.observability import record_trial

ROW = "aggressive"
ALGORITHM = "AD-2"
#: Properties the aggressive/AD-2 cell actually violates often enough
#: for a short scan to find (orderedness violations are rarer there).
targets = st.sampled_from(["consistent", "complete"])
starts = st.integers(0, 100_000)
update_counts = st.integers(8, 14)
_SCAN = 40


def _find_violating(start: int, n_updates: int, target: str) -> TrialSpec | None:
    for seed in range(start, start + _SCAN):
        spec = TrialSpec("single", ROW, ALGORITHM, seed, n_updates)
        if violates(spec.execute(), target):
            return spec
    return None


@settings(max_examples=8, deadline=None)
@given(starts, update_counts, targets)
def test_shrunk_witness_still_violates_and_never_grows(start, n, target):
    spec = _find_violating(start, n, target)
    assume(spec is not None)
    result = shrink_spec(spec, target)
    assert violates(result.spec.execute(), target)
    assert result.counterexample.violation == target
    assert result.spec.n_updates <= spec.n_updates
    assert result.spec.replication <= spec.replication


@settings(max_examples=6, deadline=None)
@given(starts, update_counts, targets)
def test_shrinking_is_idempotent(start, n, target):
    spec = _find_violating(start, n, target)
    assume(spec is not None)
    once = shrink_spec(spec, target)
    twice = shrink_spec(once.spec, target)
    assert twice.spec == once.spec
    # The fixpoint shrink needed no reduction at all: every candidate it
    # tried failed, which is exactly the 1-minimality of the first pass.
    assert twice.trace.event_lines() == once.trace.event_lines()


@settings(max_examples=6, deadline=None)
@given(starts, update_counts, targets)
def test_shrinking_a_trace_reconstructed_spec_is_bit_identical(
    start, n, target
):
    spec = _find_violating(start, n, target)
    assume(spec is not None)
    direct = shrink_spec(spec, target)
    # Ship the *input* as a trace, reconstruct the spec from the header
    # (FaultProfile dict round-trip included), shrink the reconstruction.
    reconstructed = TrialSpec(**record_trial(spec).spec)
    via_trace = shrink_spec(reconstructed, target)
    assert via_trace.spec == direct.spec
    assert via_trace.trace.event_lines() == direct.trace.event_lines()
    assert via_trace.trace.metrics == direct.trace.metrics
    assert (
        via_trace.counterexample.describe()
        == direct.counterexample.describe()
    )


@settings(max_examples=6, deadline=None)
@given(starts, update_counts, targets)
def test_shrinking_is_deterministic(start, n, target):
    spec = _find_violating(start, n, target)
    assume(spec is not None)
    first = shrink_spec(spec, target)
    second = shrink_spec(spec, target)
    assert first.spec == second.spec
    assert first.attempts == second.attempts
    assert first.passes == second.passes
    assert first.trace.event_lines() == second.trace.event_lines()
