"""Property-based tests for the shard ring, router and rebalance path.

Four invariant families:

1. **Ring invariants** — determinism (equal configs assign every key
   identically, across fresh ring builds), the virtual-node balance
   bound (with enough vnodes no shard starves and none hoards), and
   *minimal movement*: growing the ring from N to N+1 shards only moves
   keys TO the new shard — consistent hashing's defining property, and
   what makes a live rebalance cheap.
2. **Routing completeness** — splitting a feed loses nothing: every
   recorded delivery is either routed to exactly the shards whose
   conditions reference its variable, or dropped as unreferenced; and
   within each shard the per-CE delivery order is a subsequence of the
   original (FIFO preserved — the split filters, never reorders).
3. **Output invisibility** — a sharded execution at any shard count is
   byte-identical to the direct core on random feeds.
4. **Rebalance ≡ static** — resizing the ring after an arbitrary
   delivery prefix (state handoff + stale guard included) displays the
   same bytes and verdicts as never resizing at all.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.spec import TrialSpec
from repro.service.feed import record_feed
from repro.service.runtime import DirectRuntime
from repro.sharding import (
    HashRing,
    ShardConfig,
    ShardedRuntime,
    execute_rebalanced,
    moved_keys,
    split_feed,
)
from repro.workloads.scenarios import ROW_ORDER

configs = st.builds(
    ShardConfig,
    shards=st.integers(1, 12),
    virtual_nodes=st.sampled_from((1, 4, 16, 64, 128)),
    ring_seed=st.integers(0, 5),
)

keys = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789._",
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=60,
    unique=True,
)

rows = st.sampled_from(list(ROW_ORDER))
seeds = st.integers(0, 2**31)

#: Feeds are deterministic in their spec; memoize the expensive part.
_FEEDS: dict[TrialSpec, object] = {}


def feed_for(spec: TrialSpec):
    if spec not in _FEEDS:
        _FEEDS[spec] = record_feed(spec)
    return _FEEDS[spec]


def small_feed_specs():
    """Cheap single- and multi-variable specs for split/replay checks."""
    return st.builds(
        TrialSpec,
        matrix=st.sampled_from(("single", "multi")),
        row=rows,
        algorithm=st.just("AD-1"),
        seed=st.integers(0, 50),
        n_updates=st.integers(4, 14),
        replication=st.integers(1, 3),
    )


# -- 1. ring invariants -------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(configs, keys)
def test_ring_is_deterministic(config, key_list):
    a = HashRing(config).assignment(key_list)
    b = HashRing(config).assignment(key_list)
    assert a == b
    assert all(0 <= shard < config.shards for shard in a.values())


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 8), st.integers(0, 5))
def test_ring_balance_bound_with_virtual_nodes(shards, ring_seed):
    """128 vnodes over many keys: nobody starves, nobody hoards."""
    config = ShardConfig(shards=shards, virtual_nodes=128, ring_seed=ring_seed)
    ring = HashRing(config)
    population = [f"tenant{i:05d}.x" for i in range(50 * shards)]
    loads = ring.loads(population)
    ideal = len(population) / shards
    assert all(load > 0 for load in loads), f"a shard starved: {loads}"
    assert max(loads) <= 3.0 * ideal, (
        f"balance bound violated: loads={loads}, ideal={ideal}"
    )


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 8), st.sampled_from((16, 64, 128)),
       st.integers(0, 5), keys)
def test_ring_growth_moves_keys_only_to_the_new_shard(
    shards, virtual_nodes, ring_seed, key_list
):
    config = ShardConfig(
        shards=shards, virtual_nodes=virtual_nodes, ring_seed=ring_seed
    )
    before = HashRing(config).assignment(key_list)
    after = HashRing(config.resized(shards + 1)).assignment(key_list)
    for key, (old, new) in moved_keys(before, after).items():
        assert new == shards, (
            f"{key!r} moved {old}→{new}, but growing to {shards + 1} "
            f"shards may only move keys to shard {shards}"
        )


# -- 2. routing completeness + per-CE FIFO ------------------------------------

@settings(max_examples=12, deadline=None)
@given(small_feed_specs(), configs)
def test_split_feed_loses_nothing_and_preserves_fifo(spec, config):
    feed = feed_for(spec)
    assignment, sub_feeds, dropped = split_feed(feed, config)
    routed = sum(len(sub.deliveries) for sub in sub_feeds.values())
    # One condition ⇒ one subscriber set: every referenced variable's
    # deliveries land on the home shard, the rest are dropped.
    assert routed + dropped == len(feed.deliveries)
    condition = feed.condition()
    assert dropped == sum(
        1
        for _, update in feed.deliveries
        if update.varname not in condition.variables
    )
    home = sub_feeds[assignment.home]
    for ce_index, stream in enumerate(home.per_ce()):
        original = [
            update
            for update in feed.per_ce()[ce_index]
            if update.varname in condition.variables
        ]
        assert list(stream) == original, (
            f"CE{ce_index + 1}: shard split reordered or lost deliveries"
        )
    for shard, sub in sub_feeds.items():
        if shard != assignment.home:
            assert not sub.deliveries


# -- 3/4. output invisibility, static and rebalanced --------------------------

@settings(max_examples=10, deadline=None)
@given(small_feed_specs(), st.integers(1, 10))
def test_sharded_execution_is_byte_identical(spec, shards):
    feed = feed_for(spec)
    reference = DirectRuntime().execute(feed)
    result = ShardedRuntime(ShardConfig(shards=shards)).execute(feed)
    assert result.displayed_bytes() == reference.displayed_bytes()
    assert result.verdicts == reference.verdicts


@settings(max_examples=10, deadline=None)
@given(
    small_feed_specs(),
    st.integers(0, 60),
    st.integers(1, 8),
    st.integers(1, 8),
    st.integers(0, 3),
)
def test_rebalance_mid_feed_equals_static_ring(
    spec, cut, old_shards, new_shards, new_ring_seed
):
    feed = feed_for(spec)
    reference = DirectRuntime().execute(feed)
    result = execute_rebalanced(
        feed,
        ShardConfig(shards=old_shards),
        cut,
        ShardConfig(shards=new_shards, ring_seed=new_ring_seed),
    )
    assert result.displayed_bytes() == reference.displayed_bytes()
    assert result.verdicts == reference.verdicts
