"""Property-based tests (hypothesis) for the §2.2 sequence algebra."""

from hypothesis import given, strategies as st

from repro.core.sequences import (
    is_ordered,
    is_subsequence,
    merge_ordered,
    ordered_union,
    phi,
    spanning_set,
)

seqnos = st.integers(min_value=0, max_value=60)
ordered_lists = st.lists(seqnos, max_size=25).map(sorted)
dedup_ordered_lists = st.lists(seqnos, max_size=25, unique=True).map(sorted)


@given(ordered_lists, ordered_lists)
def test_ordered_union_is_ordered(s1, s2):
    assert is_ordered(ordered_union(s1, s2))


@given(ordered_lists, ordered_lists)
def test_ordered_union_phi_is_set_union(s1, s2):
    assert phi(ordered_union(s1, s2)) == phi(s1) | phi(s2)


@given(ordered_lists, ordered_lists)
def test_ordered_union_commutative(s1, s2):
    assert ordered_union(s1, s2) == ordered_union(s2, s1)


@given(ordered_lists, ordered_lists, ordered_lists)
def test_ordered_union_associative(s1, s2, s3):
    left = ordered_union(ordered_union(s1, s2), s3)
    right = ordered_union(s1, ordered_union(s2, s3))
    assert left == right


@given(dedup_ordered_lists)
def test_ordered_union_idempotent(s):
    # Lemma 2: U ⊔ U = U.
    assert ordered_union(s, s) == list(s)


@given(ordered_lists, ordered_lists)
def test_ordered_union_has_no_duplicates(s1, s2):
    union = ordered_union(s1, s2)
    assert len(union) == len(set(union))


@given(dedup_ordered_lists, dedup_ordered_lists)
def test_inputs_are_subsequences_of_union(s1, s2):
    union = ordered_union(s1, s2)
    assert is_subsequence(s1, union)
    assert is_subsequence(s2, union)


@given(st.lists(seqnos, max_size=20))
def test_subsequence_reflexive(s):
    assert is_subsequence(s, s)


@given(st.lists(seqnos, max_size=15), st.data())
def test_random_deletion_gives_subsequence(s, data):
    keep = data.draw(st.lists(st.booleans(), min_size=len(s), max_size=len(s)))
    sub = [x for x, k in zip(s, keep) if k]
    assert is_subsequence(sub, s)


@given(st.lists(seqnos, max_size=15), st.lists(seqnos, max_size=15),
       st.lists(seqnos, max_size=15))
def test_subsequence_transitive(s1, s2, s3):
    if is_subsequence(s1, s2) and is_subsequence(s2, s3):
        assert is_subsequence(s1, s3)


@given(st.sets(seqnos, max_size=15))
def test_spanning_set_contains_input(values):
    assert set(values) <= spanning_set(values)


@given(st.sets(seqnos, min_size=1, max_size=15))
def test_spanning_set_is_contiguous(values):
    span = sorted(spanning_set(values))
    assert span == list(range(min(values), max(values) + 1))


@given(dedup_ordered_lists, dedup_ordered_lists)
def test_merge_ordered_equals_sorted_set_union(s1, s2):
    assert merge_ordered(list(s1), list(s2)) == sorted(set(s1) | set(s2))
