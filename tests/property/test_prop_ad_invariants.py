"""Property-based tests: AD algorithm invariants over arbitrary arrival
streams.

The paper's guarantees are universally quantified over inputs; hypothesis
hunts for counterexamples in the space of arbitrary alert streams (not
just streams a real CE pair could emit — the algorithms' guarantees are
purely local to the AD, so they must hold regardless).
"""

from hypothesis import given, strategies as st

from repro.core.alert import Alert
from repro.core.sequences import is_subsequence
from repro.displayers import AD1, AD2, AD3, AD4, AD5, AD6
from repro.props.consistency import check_consistency_multi, check_consistency_single
from repro.props.orderedness import is_alert_sequence_ordered
from tests.conftest import alert_deg1, alert_deg2, alert_xy


@st.composite
def deg1_streams(draw):
    seqnos = draw(st.lists(st.integers(1, 20), max_size=20))
    return [alert_deg1(s) for s in seqnos]


@st.composite
def deg2_streams(draw):
    pairs = draw(
        st.lists(
            st.tuples(st.integers(1, 15), st.integers(1, 15)).filter(
                lambda p: p[0] != p[1]
            ),
            max_size=15,
        )
    )
    return [alert_deg2(max(a, b), min(a, b)) for a, b in pairs]


@st.composite
def xy_streams(draw):
    pairs = draw(
        st.lists(st.tuples(st.integers(1, 10), st.integers(1, 10)), max_size=15)
    )
    return [alert_xy(x, y) for x, y in pairs]


# -- output is always a subsequence of arrivals ------------------------------

@given(deg2_streams())
def test_every_algorithm_outputs_subsequence_of_arrivals(stream):
    for ad in (AD1(), AD2("x"), AD3("x"), AD4("x")):
        ad.offer_all(stream)
        assert is_subsequence(list(ad.output), stream)
        assert len(ad.output) + len(ad.discarded) == len(stream)


# -- AD-2: orderedness --------------------------------------------------------

@given(deg1_streams())
def test_ad2_output_ordered_deg1(stream):
    ad = AD2("x")
    ad.offer_all(stream)
    assert is_alert_sequence_ordered(list(ad.output), ["x"])


@given(deg2_streams())
def test_ad2_output_ordered_deg2(stream):
    ad = AD2("x")
    ad.offer_all(stream)
    seqnos = [a.seqno("x") for a in ad.output]
    assert seqnos == sorted(seqnos)
    assert len(seqnos) == len(set(seqnos))  # strictly increasing


# -- AD-3: consistency --------------------------------------------------------

@given(deg2_streams())
def test_ad3_output_consistent(stream):
    ad = AD3("x")
    ad.offer_all(stream)
    assert check_consistency_single(list(ad.output), "x")


@given(deg2_streams())
def test_ad3_received_set_is_valid_witness(stream):
    ad = AD3("x")
    ad.offer_all(stream)
    # Every displayed alert's history lies inside Received, and its gaps
    # inside Missed — the invariant behind Theorem 7's proof.
    for alert in ad.output:
        history = set(alert.histories.seqnos("x"))
        assert history <= ad.received_set
    assert not (ad.received_set & ad.missed_set)


# -- AD-4: both ----------------------------------------------------------------

@given(deg2_streams())
def test_ad4_output_ordered_and_consistent(stream):
    ad = AD4("x")
    ad.offer_all(stream)
    output = list(ad.output)
    assert is_alert_sequence_ordered(output, ["x"])
    assert check_consistency_single(output, "x")


@given(deg2_streams())
def test_ad4_filters_superset_of_each_parent(stream):
    ad4 = AD4("x")
    ad4.offer_all(stream)
    ad2 = AD2("x")
    ad2.offer_all(stream)
    ad3 = AD3("x")
    ad3.offer_all(stream)
    # AD-4's output is a subsequence of each parent's output? NOT in
    # general (state evolves differently once outputs diverge).  What does
    # hold: AD-2 and AD-3 each dominate AD-4 (they filter less).
    assert is_subsequence(list(ad4.output), stream)


# -- AD-5 / AD-6: multi-variable ------------------------------------------------

@given(xy_streams())
def test_ad5_output_ordered_both_variables(stream):
    ad = AD5(("x", "y"))
    ad.offer_all(stream)
    assert is_alert_sequence_ordered(list(ad.output), ["x", "y"])


@given(xy_streams())
def test_ad5_no_duplicate_consecutive(stream):
    ad = AD5(("x", "y"))
    ad.offer_all(stream)
    out = list(ad.output)
    for a, b in zip(out, out[1:]):
        assert (a.seqno("x"), a.seqno("y")) != (b.seqno("x"), b.seqno("y"))


@given(xy_streams())
def test_ad6_output_ordered_and_consistent(stream):
    ad = AD6(("x", "y"))
    ad.offer_all(stream)
    output = list(ad.output)
    assert is_alert_sequence_ordered(output, ["x", "y"])
    assert check_consistency_multi(output, ["x", "y"])


@given(xy_streams())
def test_ad5_output_consistent_for_degree1(stream):
    # Lemma 5 for the non-historical case: AD-5's output is consistent.
    ad = AD5(("x", "y"))
    ad.offer_all(stream)
    assert check_consistency_multi(list(ad.output), ["x", "y"])


# -- Domination (Theorems 6 and 8) over arbitrary streams ----------------------

@given(deg2_streams())
def test_ad1_dominates_ad2(stream):
    ad1 = AD1()
    ad1.offer_all(stream)
    ad2 = AD2("x")
    ad2.offer_all(stream)
    assert is_subsequence(list(ad2.output), list(ad1.output))


@given(deg2_streams())
def test_ad1_dominates_ad3(stream):
    ad1 = AD1()
    ad1.offer_all(stream)
    ad3 = AD3("x")
    ad3.offer_all(stream)
    assert is_subsequence(list(ad3.output), list(ad1.output))


@given(deg2_streams())
def test_ad1_dominates_ad4(stream):
    ad1 = AD1()
    ad1.offer_all(stream)
    ad4 = AD4("x")
    ad4.offer_all(stream)
    assert is_subsequence(list(ad4.output), list(ad1.output))


@given(xy_streams())
def test_ad1_dominates_ad5_and_ad6(stream):
    ad1 = AD1()
    ad1.offer_all(stream)
    for algo in (AD5(("x", "y")), AD6(("x", "y"))):
        algo.offer_all(stream)
        assert is_subsequence(list(algo.output), list(ad1.output))


# -- Greedy maximality over arbitrary streams ----------------------------------

@given(deg2_streams())
def test_ad2_every_discard_justified(stream):
    from repro.analysis.experiments import strict_orderedness_property
    from repro.props.maximality import greedy_maximality_probe

    result = greedy_maximality_probe(AD2("x"), stream, strict_orderedness_property("x"))
    assert result.unjustified == 0


@given(deg2_streams())
def test_ad3_every_discard_justified(stream):
    from repro.analysis.experiments import consistency_property
    from repro.props.maximality import greedy_maximality_probe

    result = greedy_maximality_probe(AD3("x"), stream, consistency_property("x"))
    assert result.unjustified == 0
