#!/usr/bin/env python3
"""Regenerate tests/golden/runs.json after an *intentional* behaviour change.

Review the diff before committing: every changed entry is a behavioural
difference some user could observe.
"""

import json
import pathlib

from repro.workloads.scenarios import (
    MULTI_VARIABLE_SCENARIOS,
    SINGLE_VARIABLE_SCENARIOS,
    run_scenario,
)

OUTPUT = pathlib.Path(__file__).parent / "runs.json"


def main() -> None:
    golden = {}
    matrices = (
        ("single", SINGLE_VARIABLE_SCENARIOS, ["AD-1", "AD-2", "AD-3", "AD-4"]),
        ("multi", MULTI_VARIABLE_SCENARIOS, ["AD-1", "AD-5", "AD-6"]),
    )
    for matrix_name, matrix, algorithms in matrices:
        for row in matrix:
            for algorithm in algorithms:
                for seed in (1, 2):
                    run = run_scenario(matrix[row], algorithm, seed, n_updates=15)
                    key = f"{matrix_name}/{row}/{algorithm}/seed{seed}"
                    golden[key] = {
                        "received": [
                            [u.shorthand() for u in trace] for trace in run.received
                        ],
                        "displayed": [a.shorthand() for a in run.displayed],
                        "properties": dict(run.evaluate_properties().summary),
                    }
    with open(OUTPUT, "w") as handle:
        json.dump(golden, handle, indent=1, sort_keys=True)
    print(f"wrote {len(golden)} entries to {OUTPUT}")


if __name__ == "__main__":
    main()
