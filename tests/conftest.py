"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.alert import Alert, make_alert
from repro.core.condition import c1, c2, c3, cm
from repro.core.update import Update, parse_trace


def u(text: str) -> Update:
    """Parse one update in paper shorthand: u("7x(3000)")."""
    return parse_trace(text)[0]


def trace(text: str) -> list[Update]:
    """Parse a whole trace: trace("1x(2900), 2x(3100)")."""
    return parse_trace(text)


def alert_deg1(seqno: int, value: float = 0.0, var: str = "x", cond: str = "c") -> Alert:
    """A degree-1 alert triggered on update ``seqno``."""
    return make_alert(cond, {var: [Update(var, seqno, value)]})


def alert_deg2(head: int, prev: int, var: str = "x", cond: str = "c") -> Alert:
    """A degree-2 alert with history ⟨head, prev⟩ (most recent first)."""
    return make_alert(cond, {var: [Update(var, head, 0.0), Update(var, prev, 0.0)]})


def alert_xy(x_seqno: int, y_seqno: int, cond: str = "cm") -> Alert:
    """A two-variable degree-1 alert a(ix, jy)."""
    return make_alert(
        cond,
        {"x": [Update("x", x_seqno, 0.0)], "y": [Update("y", y_seqno, 0.0)]},
    )


@pytest.fixture
def cond_c1():
    return c1()


@pytest.fixture
def cond_c2():
    return c2()


@pytest.fixture
def cond_c3():
    return c3()


@pytest.fixture
def cond_cm():
    return cm()
