# Developer conveniences. Everything is plain pytest/python underneath.

PYTHON ?= python

.PHONY: install test test-fast bench report examples clean

install:
	$(PYTHON) -m pip install -e .[dev] || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:  ## skip the slow end-to-end suites
	$(PYTHON) -m pytest tests/ \
		--ignore=tests/integration/test_repro_report.py \
		--ignore=tests/integration/test_example_scripts.py

bench:  ## regenerate every paper artifact (benchmarks/results/)
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:  ## one-shot reproduction verdict
	$(PYTHON) -m repro report --budget 0.3 --output reproduction-report.md

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f >/dev/null || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results reproduction-report.md
	find . -name __pycache__ -type d -exec rm -rf {} +
