#!/usr/bin/env python3
"""Reactor monitoring: conservative vs aggressive triggering (c2 vs c3).

Walks the nuclear-reactor scenario of Sections 1–3: a temperature sensor
(DM), replicated evaluators, and the delta condition "temperature rose
more than 200 degrees".  The aggressive variant (c2) compares against the
last reading *received* — across a lost update it can fire on a rise that
never happened between consecutive readings, and replication then shows
the paper's headline failure: the user receives alerts no non-replicated
system could produce.  The conservative variant (c3) refuses to trigger
across gaps and stays consistent.

Run:  python examples/reactor_monitoring.py
"""

from repro import SystemConfig, c2, c3, run_system
from repro.workloads.generators import rising_runs
from repro.simulation.rng import RandomStreams


def describe(result, label: str) -> None:
    report = result.evaluate_properties()
    print(f"\n--- {label} ---")
    print(f"  CE inputs: {[len(t) for t in result.received]} updates "
          f"(of {len(result.sent['x'])} sent; front links are lossy)")
    print(f"  displayed alerts: {[a.shorthand() for a in result.displayed]}")
    summary = report.summary
    print(f"  ordered={summary['ordered']}  complete={summary['complete']}  "
          f"consistent={summary['consistent']}")
    if not report.consistent:
        print(f"  inconsistency: {report.consistent.conflict}")


def main() -> None:
    streams = RandomStreams(20010825)
    workload = {"x": rising_runs(streams.stream("workload"), 40)}
    config = SystemConfig(replication=2, ad_algorithm="AD-1", front_loss=0.3)

    # Hunt a seed where the aggressive condition goes inconsistent: the
    # paper's Theorem 4 says such runs exist; at 30% loss they are common.
    seed = 0
    for candidate in range(200):
        result = run_system(c2(), workload, config, seed=candidate)
        if not result.evaluate_properties().consistent:
            seed = candidate
            break

    aggressive = run_system(c2(), workload, config, seed=seed)
    describe(aggressive, f"aggressive triggering (c2), seed={seed}")

    conservative = run_system(c3(), workload, config, seed=seed)
    describe(conservative, f"conservative triggering (c3), same seed")

    print(
        "\nTakeaway (Theorems 3 & 4): conservative triggering keeps the "
        "alert stream consistent at the cost of missing cross-gap rises; "
        "aggressive triggering can tell the user about rises that no "
        "single evaluator's input sequence can explain."
    )

    # Fix the aggressive system with AD-3 (Theorem 7): same seed, same
    # workload, but the Alert Displayer filters conflicting alerts.
    fixed_config = SystemConfig(
        replication=2, ad_algorithm="AD-3", front_loss=0.3
    )
    fixed = run_system(c2(), workload, fixed_config, seed=seed)
    describe(fixed, "aggressive triggering + Algorithm AD-3 at the AD")
    print(
        "\nAD-3 restores consistency by refusing alerts that would place "
        "an update in a conflicting received/missed state."
    )


if __name__ == "__main__":
    main()
