#!/usr/bin/env python3
"""Two reactors: multi-variable conditions and interleaving divergence.

Section 5 / Theorem 10: with two independent data sources, replication
breaks even over *lossless* links, because the CEs may see x- and
y-updates interleaved differently.  This script replays the paper's
two-reactor counterexample, then runs randomized two-variable systems
under AD-1 vs AD-5 vs AD-6 and tallies the paper's property claims.

Run:  python examples/multi_reactor.py
"""

from repro import cm
from repro.displayers import AD1, AD5
from repro.props.consistency import check_consistency_multi
from repro.props.orderedness import is_alert_sequence_ordered
from repro.props.report import PropertyTally
from repro.workloads.scenarios import MULTI_VARIABLE_SCENARIOS, run_scenario
from repro.workloads.traces import theorem_10_example


def paper_counterexample() -> None:
    print("=== Theorem 10's counterexample (lossless links!) ===")
    ex = theorem_10_example()
    print("Ux = <1x(1000), 2x(1200)>,  Uy = <1y(1050), 2y(1150)>")
    print("CE1 sees x first, CE2 sees y first (network delays differ).")
    print(f"CE1 alerts: {[a.shorthand() for a in ex.alert_streams[0]]}")
    print(f"CE2 alerts: {[a.shorthand() for a in ex.alert_streams[1]]}")

    displayed = ex.display(AD1(), [0, 1])
    print(f"\nAD-1 shows: {[a.shorthand() for a in displayed]}")
    print(f"  ordered?    {is_alert_sequence_ordered(displayed, ['x', 'y'])}")
    print(f"  consistent? {bool(check_consistency_multi(displayed, ['x', 'y']))}")
    print("a(2x,1y) before a(1x,2y) needs 2x before 1x — impossible. "
          "The user sees an impossible story.")

    displayed5 = ex.display(AD5(("x", "y")), [0, 1])
    print(f"\nAD-5 shows: {[a.shorthand() for a in displayed5]} — "
          "ordered and consistent (one alert filtered).")


def randomized_sweep() -> None:
    print("\n=== Randomized two-reactor systems (|x - y| > 100), 60 trials ===")
    print(f"{'algorithm':<8} {'unordered':>10} {'inconsistent':>13}")
    for algorithm in ("AD-1", "AD-5", "AD-6"):
        tally = PropertyTally()
        for trial in range(60):
            run = run_scenario(
                MULTI_VARIABLE_SCENARIOS["non-historical"],
                algorithm,
                7000 + trial,
                n_updates=20,
            )
            tally.add(run.evaluate_properties(), seed=7000 + trial)
        print(
            f"{algorithm:<8} {tally.ordered_violations:>8}/60 "
            f"{tally.consistency_violations:>11}/60"
        )
    print(
        "\nAD-1 violates both properties routinely; AD-5/AD-6 never do "
        "(Table 3).  Completeness, however, is unobtainable for every "
        "multi-variable algorithm (Lemma 6) — see benchmarks/bench_table3.py."
    )


def main() -> None:
    paper_counterexample()
    randomized_sweep()


if __name__ == "__main__":
    main()
