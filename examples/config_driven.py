#!/usr/bin/env python3
"""Config-driven monitoring: conditions from text, workloads from CSV.

A deployment doesn't hard-code its conditions: operators write them in
config files and feed recorded sensor logs back through the system.
This example round-trips both paths:

1. write a sensor log as CSV, load it back as a workload;
2. parse condition definitions from plain text (whitelisted grammar —
   nothing is executed);
3. run the replicated system and score the paper's three properties;
4. save a minimized counterexample to JSON when a violation shows up.

Run:  python examples/config_driven.py
"""

import json
import tempfile
from pathlib import Path

from repro.core.parser import parse_condition
from repro.components.system import SystemConfig, run_system
from repro.workloads.csv_io import load_workload, save_workload
from repro.simulation.rng import RandomStreams
from repro.workloads.generators import rising_runs

CONDITION_DEFINITIONS = {
    # name: (expression text, conservative?)
    "overheat": ("H.x[0].value > 1300", False),
    "spike": ("H.x[0].value - H.x[-1].value > 200", False),
    "spike_strict": (
        "H.x[0].value - H.x[-1].value > 200 "
        "and H.x[0].seqno == H.x[-1].seqno + 1",
        True,
    ),
}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-config-"))

    # 1. Record a sensor log to CSV and load it back.
    streams = RandomStreams(2001)
    recorded = {"x": rising_runs(streams.stream("sensor"), 30)}
    log_path = workdir / "sensor_log.csv"
    save_workload(recorded, str(log_path))
    workload = load_workload(str(log_path))
    print(f"sensor log: {log_path} ({len(workload['x'])} readings)")

    # 2. Parse the condition definitions.
    conditions = {
        name: parse_condition(name, text, conservative=conservative)
        for name, (text, conservative) in CONDITION_DEFINITIONS.items()
    }
    for name, condition in conditions.items():
        kind = "conservative" if condition.is_conservative else "aggressive"
        print(f"condition {name!r}: degree {condition.degree('x')}, {kind}")

    # 3. Run each condition through a replicated system.
    config = SystemConfig(replication=2, ad_algorithm="AD-1", front_loss=0.3)
    print(f"\n{'condition':<14} {'alerts':>7} {'ordered':>8} "
          f"{'complete':>9} {'consistent':>11}")
    violating_run = None
    for name, condition in conditions.items():
        result = run_system(condition, workload, config, seed=11)
        report = result.evaluate_properties()
        summary = report.summary
        print(f"{name:<14} {len(result.displayed):>7} "
              f"{str(summary['ordered']):>8} {str(summary['complete']):>9} "
              f"{str(summary['consistent']):>11}")
        if summary["consistent"] is False and violating_run is None:
            violating_run = result

    # 4. Persist a minimized counterexample for the bug report.
    if violating_run is not None:
        from repro.analysis.witness import (
            counterexample_from_run,
            shrink_counterexample,
        )
        from repro.core.serialization import dump_counterexample
        from repro.displayers.registry import make_ad

        counterexample = counterexample_from_run(violating_run)
        shrunk = shrink_counterexample(
            counterexample,
            lambda: make_ad("AD-1", violating_run.condition),
        )
        bug_path = workdir / "counterexample.json"
        dump_counterexample(shrunk, str(bug_path))
        print(f"\nminimized inconsistency witness saved to {bug_path}:")
        print(json.dumps(json.loads(bug_path.read_text())["traces"], indent=1))
    else:
        print("\nno consistency violation at this seed — "
              "try more seeds (the aggressive 'spike' condition produces "
              "them readily at 30% loss).")


if __name__ == "__main__":
    main()
