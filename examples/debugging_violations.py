#!/usr/bin/env python3
"""Debugging tour: witness a violation, minimize it, read the timeline.

The paper proves its ✗ cells with tiny hand-crafted counterexamples.
This example shows the tooling that recovers such counterexamples from
*live* runs automatically:

1. run randomized replicated systems until one violates consistency;
2. shrink the violating run's inputs with delta-debugging until it is as
   small as the paper's own Theorem-4 example;
3. render the (pre-shrink) run as a lane timeline to see the failure
   unfold in simulated time.

Run:  python examples/debugging_violations.py
"""

from repro.analysis.timeline import TimelineRecorder
from repro.analysis.witness import counterexample_from_run, shrink_counterexample
from repro.components.system import MonitoringSystem
from repro.displayers.registry import make_ad
from repro.workloads.scenarios import SINGLE_VARIABLE_SCENARIOS, run_scenario


def main() -> None:
    scenario = SINGLE_VARIABLE_SCENARIOS["aggressive"]
    condition = scenario.make_condition()

    # 1. Hunt for a consistency violation.
    print("hunting for a consistency violation (c2, 30% loss, AD-1) ...")
    found = None
    for seed in range(300):
        run = run_scenario(scenario, "AD-1", seed, n_updates=20)
        counterexample = counterexample_from_run(run)
        if counterexample is not None and counterexample.violation == "consistent":
            found = (seed, run, counterexample)
            break
    assert found is not None, "no violation in 300 seeds (unexpected)"
    seed, run, counterexample = found
    print(f"found at seed {seed}: {counterexample.total_updates} updates, "
          f"{len(run.displayed)} displayed alerts\n")

    # 2. Shrink it to paper size.
    shrunk = shrink_counterexample(
        counterexample, lambda: make_ad("AD-1", condition)
    )
    print("minimized counterexample (compare the paper's Theorem 4):")
    print(shrunk.describe())
    print(f"(shrunk {counterexample.total_updates} -> "
          f"{shrunk.total_updates} updates)\n")

    # 3. Replay the original run with exact timestamps.
    print(f"timeline of the original violating run (seed {seed}):")
    from repro.simulation.rng import RandomStreams
    from repro.components.system import SystemConfig

    streams = RandomStreams(seed)
    workload = scenario.make_workload(streams, 20)
    config = SystemConfig(
        replication=2,
        ad_algorithm="AD-1",
        front_loss=scenario.front_loss,
    )
    system = MonitoringSystem(condition, workload, config, seed=seed)
    recorder = TimelineRecorder.attach(system)
    system.run()
    lines = recorder.render().splitlines()
    print("\n".join(lines[:30]))
    if len(lines) > 30:
        print(f"... ({len(lines) - 30} more events)")


if __name__ == "__main__":
    main()
