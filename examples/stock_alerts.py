#!/usr/bin/env python3
"""Stock alerts: the introduction's "sharp price drop" confusion, replayed.

Section 1 motivates the whole paper with this scenario: a monitoring
system reports "sharp price drops" (a quote more than 20% below the
previous one).  Quotes 100, 50, 52 are sent; CE1 sees all three and
alerts on the 100→50 drop; CE2 misses the 50 and alerts on the "drop"
100→52.  The alerts are not duplicates — the user thinks the price
dropped sharply twice.

This script replays that exact trace, then shows AD-2 and AD-4 cleaning
up the user's view, and finally runs a randomized market to measure how
often the confusion occurs.

Run:  python examples/stock_alerts.py
"""

from repro import SystemConfig, parse_trace, run_system, sharp_price_drop
from repro.core.evaluator import ConditionEvaluator
from repro.displayers import AD1, AD4
from repro.props.consistency import check_consistency_single
from repro.simulation.rng import RandomStreams
from repro.workloads.generators import stock_quotes


def paper_trace() -> None:
    print("=== The paper's own trace: quotes 100, 50, 52 ===")
    condition = sharp_price_drop(0.2)

    ce1 = ConditionEvaluator(condition, source="CE1")
    a1_stream = ce1.ingest_all(parse_trace("1price(100), 2price(50), 3price(52)"))
    ce2 = ConditionEvaluator(condition, source="CE2")
    a2_stream = ce2.ingest_all(parse_trace("1price(100), 3price(52)"))

    print(f"CE1 (saw all quotes) alerts:   {[a.shorthand() for a in a1_stream]}")
    print(f"CE2 (missed the 50) alerts:    {[a.shorthand() for a in a2_stream]}")

    ad = AD1()
    displayed = ad.offer_all(a1_stream + a2_stream)
    print(f"AD-1 shows the user:           {[a.shorthand() for a in displayed]}")
    consistent = check_consistency_single(displayed, "price")
    print(f"consistent? {bool(consistent)} — {consistent.conflict}")
    print("The user believes there were TWO sharp drops. There was one.\n")

    ad4 = AD4("price")
    displayed4 = ad4.offer_all(a1_stream + a2_stream)
    print(f"AD-4 instead shows:            {[a.shorthand() for a in displayed4]}")
    print("One drop reported; the conflicting retelling is filtered.\n")


def randomized_market() -> None:
    print("=== Randomized market: how often does the confusion bite? ===")
    condition = sharp_price_drop(0.2, varname="price")
    streams = RandomStreams(99)
    inconsistent_runs = 0
    trials = 150
    for trial in range(trials):
        workload = {
            "price": stock_quotes(streams.spawn(f"t{trial}").stream("w"), 30)
        }
        config = SystemConfig(replication=2, ad_algorithm="AD-1", front_loss=0.25)
        result = run_system(condition, workload, config, seed=trial)
        if not result.evaluate_properties().consistent:
            inconsistent_runs += 1
    print(
        f"{inconsistent_runs}/{trials} runs showed the user an alert set no "
        "single quote stream could explain (25% quote loss, 2 CEs, AD-1)."
    )

    fixed = 0
    for trial in range(trials):
        workload = {
            "price": stock_quotes(streams.spawn(f"t{trial}").stream("w"), 30)
        }
        config = SystemConfig(replication=2, ad_algorithm="AD-4", front_loss=0.25)
        result = run_system(condition, workload, config, seed=trial)
        if not result.evaluate_properties().consistent:
            fixed += 1
    print(f"{fixed}/{trials} inconsistent runs remain under AD-4 "
          "(Theorem 9 says this must be 0).")


def main() -> None:
    paper_trace()
    randomized_market()


if __name__ == "__main__":
    main()
