#!/usr/bin/env python3
"""Multiple conditions (Appendix D): conflicts, demux, and disjunction.

Three demonstrations:

1. **Example 4** — two interdependent conditions monitored on separate
   nodes contradict each other with no replication at all.
2. **Figure D-7(c)** — a replicated multi-condition system where the AD
   runs one filter instance per condition stream, keeping each stream's
   single-condition guarantees.
3. **Figure D-8** — co-located conditions reduce to one combined
   condition C = A ∨ B.

Run:  python examples/multi_condition.py
"""

from repro import ExpressionCondition, H, SystemConfig, run_system
from repro.displayers import AD2
from repro.multicondition import DisjunctionCondition, PerConditionAD, example_4
from repro.props.orderedness import is_alert_sequence_ordered


def demo_example_4() -> None:
    print("=== Example 4: contradiction without replication ===")
    alerts_a, alerts_b = example_4()
    print("Both reactors rise 2000 -> 2100; the two CEs see the changes "
          "in different orders.")
    print(f"condition A ('x hotter than y') alerted: "
          f"{[a.shorthand() for a in alerts_a]}")
    print(f"condition B ('y hotter than x') alerted: "
          f"{[a.shorthand() for a in alerts_b]}")
    print("The user is told both that x > y and that y > x.\n")


def demo_per_condition_ad() -> None:
    print("=== Figure D-7(c): one AD, one filter instance per condition ===")
    hot = ExpressionCondition("hot", H.x[0].value > 3000)
    very_hot = ExpressionCondition("very_hot", H.x[0].value > 3200)
    workload = {"x": [(t * 10.0, 2900.0 + (t % 8) * 60.0) for t in range(30)]}
    config = SystemConfig(replication=2, ad_algorithm="pass", front_loss=0.3)

    arrivals = []
    for condition in (hot, very_hot):
        result = run_system(condition, workload, config, seed=17)
        arrivals.extend(result.ad_arrivals)

    demux = PerConditionAD({"hot": AD2("x"), "very_hot": AD2("x")})
    demux.offer_all(arrivals)
    for name in ("hot", "very_hot"):
        stream = list(demux.stream(name))
        print(f"  stream {name!r}: {len(stream)} alerts, ordered="
              f"{is_alert_sequence_ordered(stream, ['x'])}")
    print("Each stream gets AD-2's orderedness guarantee independently.\n")


def demo_disjunction() -> None:
    print("=== Figure D-8: co-located conditions as C = A OR B ===")
    too_hot = ExpressionCondition("A", H.x[0].value > 3000)
    too_cold = ExpressionCondition("B", H.x[0].value < 2600)
    out_of_band = DisjunctionCondition("C", [too_hot, too_cold])
    workload = {"x": [(t * 10.0, 2500.0 + (t % 7) * 120.0) for t in range(20)]}
    config = SystemConfig(replication=1, ad_algorithm="pass")

    result = run_system(out_of_band, workload, config, seed=3)
    print(f"combined condition C fired on seqnos: "
          f"{[a.seqno('x') for a in result.displayed]}")
    run_a = run_system(too_hot, workload, config, seed=3)
    run_b = run_system(too_cold, workload, config, seed=3)
    print(f"A alone: {[a.seqno('x') for a in run_a.displayed]}, "
          f"B alone: {[a.seqno('x') for a in run_b.displayed]}")
    print("C fires exactly on the union — the two-condition system reduces "
          "to a single-condition one, and all of Sections 3-4 applies.")


def main() -> None:
    demo_example_4()
    demo_per_condition_ad()
    demo_disjunction()


if __name__ == "__main__":
    main()
