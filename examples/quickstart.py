#!/usr/bin/env python3
"""Quickstart: monitor one condition with two replicated evaluators.

Builds the paper's basic setup — one Data Monitor, two Condition
Evaluators, one Alert Displayer — runs it over a lossy network, and shows
what the user sees plus how the run scores on the paper's three
properties (orderedness, completeness, consistency).

Run:  python examples/quickstart.py
"""

from repro import H, ExpressionCondition, SystemConfig, run_system


def main() -> None:
    # 1. Define the condition: "reactor temperature is over 3000 degrees"
    #    (the paper's c1) in the expression DSL.
    overheat = ExpressionCondition("overheat", H.reactor[0].value > 3000)
    print(f"condition: {overheat!r}")
    print(f"  historical? {overheat.is_historical}   "
          f"degree: {overheat.degree('reactor')}")

    # 2. A workload: the reactor heats up, cools, and spikes again.
    temperatures = [2900, 3050, 3150, 2800, 2950, 3300, 3250, 2700, 3100, 3400]
    workload = {"reactor": [(t * 10.0, float(v)) for t, v in enumerate(temperatures)]}

    # 3. A replicated system: 2 CEs, 20% front-link loss, AD-1 dedup.
    config = SystemConfig(replication=2, ad_algorithm="AD-1", front_loss=0.2)
    result = run_system(overheat, workload, config, seed=7)

    # 4. What happened?
    print(f"\nDM broadcast {len(result.sent['reactor'])} updates")
    for index, trace in enumerate(result.received):
        print(f"  CE{index + 1} received {len(trace)}: "
              f"{[u.shorthand(False) for u in trace]}")
    print(f"\nalerts generated per CE: "
          f"{[len(a) for a in result.ce_alerts]}")
    print("alerts displayed to the user:")
    for alert in result.displayed:
        print(f"  {alert.shorthand()}  (from {alert.source})")
    print(f"alerts filtered as duplicates: {len(result.filtered)}")

    # 5. Score the run against the paper's three properties.
    report = result.evaluate_properties()
    print(f"\nproperties: {report.summary}")
    print("(non-historical condition: complete + consistent guaranteed; "
          "orderedness may be lost — Table 1, row 2)")


if __name__ == "__main__":
    main()
