"""Trial-engine throughput benchmark — legacy baseline vs. engine path.

Times Table 3 (the multi-variable table, the most property-check-heavy
workload in the repo) two ways on identical seeds:

* **legacy**: sequential :func:`build_table` with the reference caches
  disabled and the pre-DFS completeness backend restored via
  :func:`legacy_completeness_backend` — the closest in-repo
  reconstruction of the seed's algorithms.  (The seed's *constant
  factors* — pre-``__slots__`` kernel events, per-ingest definedness
  re-checks — cannot be reverted by a context manager, so this baseline
  is conservative: measured against the actual seed commit the engine
  speedup is larger.)
* **engine**: :func:`build_table_parallel` through the persistent
  :class:`TrialEngine` with memoized reference semantics and the pruned
  completeness DFS.

Both runs must produce *identical* :class:`PropertyTally` objects — the
speedup is only meaningful if the statistics are bit-for-bit unchanged.

Also times the engine at ``completeness_n_updates=8`` to document that
the DFS lifts the old enumeration ceiling of 5 readings per variable
while staying inside the legacy n=5 time budget.

Run directly (writes ``BENCH_trials.json`` next to this file):

    PYTHONPATH=src python benchmarks/bench_engine.py

CI regression gate (reduced trials, best-of-``--repeat`` engine timing,
compares per-trial seconds against the committed baseline; the tight
tolerance doubles as the observability layer's tracing-disabled overhead
gate — instrumentation must stay under 5% per trial):

    PYTHONPATH=src python benchmarks/bench_engine.py \
        --trials 30 --repeat 3 --tolerance 1.05 \
        --check-against benchmarks/BENCH_trials.json

``--emit-trace DIR`` additionally records one JSONL trace per Table 3 row
(see :mod:`repro.observability`) and replays each one, so every benchmark
run leaves bit-identity-verified trace artifacts behind.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.analysis.parallel import build_table_parallel
from repro.analysis.tables import build_table
from repro.core.reference import reference_caches_disabled
from repro.props.report import legacy_completeness_backend

TABLE_ID = "table3"
N_UPDATES = 30
# n=5 keeps the legacy enumeration backend tractable so the two paths
# compare like for like; the ceiling-lift run uses n=8 on top.
LEGACY_COMPLETENESS_N = 5
LIFTED_COMPLETENESS_N = 8
DEFAULT_TRIALS = 100
DEFAULT_TOLERANCE = 2.0
RESULT_PATH = Path(__file__).resolve().parent / "BENCH_trials.json"


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _best_time(fn, repeat: int):
    """Best-of-``repeat`` wall time — the robust estimator for gating.

    Shared runners are noisy; the *minimum* over a few runs tracks the
    code's actual cost, where a single sample tracks the machine's mood.
    """
    result, best = _time(fn)
    for _ in range(repeat - 1):
        candidate, elapsed = _time(fn)
        if elapsed < best:
            result, best = candidate, elapsed
    return result, best


def run_benchmark(trials: int, repeat: int = 1) -> dict:
    kwargs = dict(
        trials=trials,
        n_updates=N_UPDATES,
        completeness_trials=None,
        completeness_n_updates=LEGACY_COMPLETENESS_N,
    )

    def legacy_build():
        with legacy_completeness_backend(), reference_caches_disabled():
            return build_table(TABLE_ID, **kwargs)

    legacy, legacy_s = _time(legacy_build)
    engine, engine_s = _best_time(
        lambda: build_table_parallel(TABLE_ID, processes="auto", **kwargs),
        repeat,
    )
    if engine.tallies != legacy.tallies:
        raise AssertionError(
            "engine tallies diverge from the legacy baseline — the speedup "
            "is void; investigate before trusting any timing"
        )

    # The same workload with per-trial CountersTracers attached, to
    # document what observability costs when it is actually on.  Verdicts
    # must be unchanged — tracing is read-only by contract.
    traced, traced_s = _time(
        lambda: build_table_parallel(
            TABLE_ID, processes="auto", collect_counters=True, **kwargs
        )
    )
    if traced.measured_grid() != engine.measured_grid():
        raise AssertionError(
            "tracing perturbed the table verdicts — observability must be "
            "read-only"
        )

    _, lifted_s = _time(
        lambda: build_table_parallel(
            TABLE_ID,
            processes="auto",
            trials=trials,
            n_updates=N_UPDATES,
            completeness_trials=None,
            completeness_n_updates=LIFTED_COMPLETENESS_N,
        )
    )

    return {
        "workload": {
            "table": TABLE_ID,
            "trials": trials,
            "n_updates": N_UPDATES,
            "completeness_n_updates": LEGACY_COMPLETENESS_N,
            "lifted_completeness_n_updates": LIFTED_COMPLETENESS_N,
        },
        "timings": {
            "legacy_s": round(legacy_s, 3),
            "engine_s": round(engine_s, 3),
            "engine_lifted_n8_s": round(lifted_s, 3),
            "engine_counters_s": round(traced_s, 3),
            "speedup_vs_legacy": round(legacy_s / engine_s, 2),
            "counters_overhead": round(traced_s / engine_s, 2),
            "legacy_per_trial_ms": round(1000 * legacy_s / trials, 3),
            "engine_per_trial_ms": round(1000 * engine_s / trials, 3),
        },
        "tallies_identical": True,
        "host": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
    }


def check_regression(result: dict, baseline_path: Path, tolerance: float) -> bool:
    """True iff the current per-trial engine time is within ``tolerance``x
    of the committed baseline (trial counts may differ between runs)."""
    baseline = json.loads(baseline_path.read_text())
    committed = baseline["timings"]["engine_per_trial_ms"]
    current = result["timings"]["engine_per_trial_ms"]
    ratio = current / committed
    print(
        f"engine per-trial: {current:.3f} ms vs committed "
        f"{committed:.3f} ms ({ratio:.2f}x, tolerance {tolerance:.2f}x)"
    )
    return ratio <= tolerance


def emit_traces(directory: Path, seed: int = 20010800) -> list[Path]:
    """Record one replay-verified JSONL trace per Table 3 row.

    Each trace is immediately replayed; a divergence means the
    determinism contract broke on this host and the benchmark numbers
    cannot be trusted, so it raises instead of writing a bad artifact.
    """
    from repro.engine.spec import TrialSpec
    from repro.observability import record_trial, replay_trace
    from repro.workloads.scenarios import ROW_ORDER

    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for index, row in enumerate(ROW_ORDER):
        spec = TrialSpec("multi", row, "AD-5", seed + index, 10)
        trace = record_trial(spec)
        result = replay_trace(trace)
        if not result.identical:
            raise AssertionError(
                f"trace for {row} failed replay: {result.describe()}"
            )
        paths.append(trace.write(directory / f"{TABLE_ID}_{row}.jsonl"))
    return paths


def test_engine_throughput(benchmark):
    """Harness entry point: reduced-trials run with artifact output."""
    from benchmarks.conftest import save_result

    result = benchmark.pedantic(
        lambda: run_benchmark(trials=30), rounds=1, iterations=1
    )
    timings = result["timings"]
    save_result(
        "engine_throughput",
        f"{TABLE_ID} x 30 trials: legacy {timings['legacy_s']}s, "
        f"engine {timings['engine_s']}s "
        f"({timings['speedup_vs_legacy']}x vs in-repo legacy baseline; "
        "the seed commit itself is slower still), "
        f"engine @ n=8 completeness {timings['engine_lifted_n8_s']}s, "
        f"engine with counters {timings['engine_counters_s']}s "
        f"({timings['counters_overhead']}x)",
    )
    traces = emit_traces(RESULT_PATH.parent / "results" / "traces")
    save_result(
        "trace_replay",
        f"{len(traces)} {TABLE_ID} traces recorded and replayed "
        "bit-identically (see traces/)",
    )
    # Identical tallies are asserted inside run_benchmark; the ratio floor
    # is deliberately loose — shared CI runners are noisy.
    assert timings["speedup_vs_legacy"] >= 1.5


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS)
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"write the result JSON here (default: {RESULT_PATH})",
    )
    parser.add_argument(
        "--check-against",
        type=Path,
        default=None,
        help="committed BENCH_trials.json to gate against; exits 1 when the "
        "per-trial engine time regresses beyond --tolerance",
    )
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="time the engine path this many times and gate on the best "
        "run (noise-robust; use >= 3 with tight tolerances)",
    )
    parser.add_argument(
        "--emit-trace",
        type=Path,
        default=None,
        metavar="DIR",
        help="record one replay-verified JSONL trace per table row to DIR",
    )
    args = parser.parse_args(argv)
    if args.check_against is not None and not args.check_against.is_file():
        # Validate before the (expensive) benchmark run, not after.
        parser.error(f"baseline not found: {args.check_against}")

    result = run_benchmark(args.trials, repeat=args.repeat)
    timings = result["timings"]
    print(
        f"{TABLE_ID} x {args.trials} trials: "
        f"legacy {timings['legacy_s']}s, engine {timings['engine_s']}s "
        f"({timings['speedup_vs_legacy']}x), "
        f"engine @ n=8 completeness {timings['engine_lifted_n8_s']}s, "
        f"engine with counters {timings['engine_counters_s']}s "
        f"({timings['counters_overhead']}x)"
    )

    if args.emit_trace is not None:
        paths = emit_traces(args.emit_trace)
        print(f"recorded and replay-verified {len(paths)} traces in "
              f"{args.emit_trace}")

    if args.check_against is not None:
        if not check_regression(result, args.check_against, args.tolerance):
            print("FAIL: engine throughput regressed", file=sys.stderr)
            return 1
        print("OK: within tolerance")
        return 0

    output = args.output or RESULT_PATH
    output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
