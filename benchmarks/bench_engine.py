"""Trial-engine throughput benchmark — legacy baseline vs. engine path.

Times Table 3 (the multi-variable table, the most property-check-heavy
workload in the repo) two ways on identical seeds:

* **legacy**: sequential :func:`build_table` with the reference caches
  disabled and the pre-DFS completeness backend restored via
  :func:`legacy_completeness_backend` — the closest in-repo
  reconstruction of the seed's algorithms.  (The seed's *constant
  factors* — pre-``__slots__`` kernel events, per-ingest definedness
  re-checks — cannot be reverted by a context manager, so this baseline
  is conservative: measured against the actual seed commit the engine
  speedup is larger.)
* **engine**: :func:`build_table_parallel` through the persistent
  :class:`TrialEngine` with memoized reference semantics and the pruned
  completeness DFS.

Both runs must produce *identical* :class:`PropertyTally` objects — the
speedup is only meaningful if the statistics are bit-for-bit unchanged.

Also times the engine at ``completeness_n_updates=8`` to document that
the DFS lifts the old enumeration ceiling of 5 readings per variable
while staying inside the legacy n=5 time budget.

Run directly (writes ``BENCH_trials.json`` next to this file):

    PYTHONPATH=src python benchmarks/bench_engine.py

CI regression gate (reduced trials, best-of-``--repeat`` engine timing,
compares per-trial seconds against the committed baseline; the tight
tolerance doubles as the observability layer's tracing-disabled overhead
gate — instrumentation must stay under 5% per trial):

    PYTHONPATH=src python benchmarks/bench_engine.py \
        --trials 30 --repeat 3 --tolerance 1.05 \
        --check-against benchmarks/BENCH_trials.json

``--emit-trace DIR`` additionally records one JSONL trace per Table 3 row
(see :mod:`repro.observability`) and replays each one, so every benchmark
run leaves bit-identity-verified trace artifacts behind.

Kernel comparison: every full run also times the two trial executors —
the event-object oracle (``kernel="object"``) and the struct-of-arrays
fast path (``kernel="array"``, see :mod:`repro.simulation.arraykernel`) —
side by side on the Table 3 main-grid specs, *executor-only* (inputs
prebuilt, so the measured span is exactly ``run_system``), asserting the
runs are field-identical before trusting any ratio.  The results land in
``timings.object_sim_per_trial_ms`` / ``timings.array_sim_per_trial_ms``
/ ``timings.speedup_array_vs_object``.

CI array-kernel gate (the smoke workload is deliberately long —
multi/conservative, n=600 readings — where the array kernel's advantage
is largest and per-trial noise smallest; best-of-``--smoke-repeat``
paired ratio must clear the floor):

    PYTHONPATH=src python benchmarks/bench_engine.py --array-gate 5.0
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.analysis.parallel import build_table_parallel
from repro.analysis.tables import build_table
from repro.core.reference import reference_caches_disabled
from repro.props.report import legacy_completeness_backend

TABLE_ID = "table3"
N_UPDATES = 30
# n=5 keeps the legacy enumeration backend tractable so the two paths
# compare like for like; the ceiling-lift run uses n=8 on top.
LEGACY_COMPLETENESS_N = 5
LIFTED_COMPLETENESS_N = 8
DEFAULT_TRIALS = 100
DEFAULT_TOLERANCE = 2.0
RESULT_PATH = Path(__file__).resolve().parent / "BENCH_trials.json"


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _best_time(fn, repeat: int):
    """Best-of-``repeat`` wall time — the robust estimator for gating.

    Shared runners are noisy; the *minimum* over a few runs tracks the
    code's actual cost, where a single sample tracks the machine's mood.
    """
    result, best = _time(fn)
    for _ in range(repeat - 1):
        candidate, elapsed = _time(fn)
        if elapsed < best:
            result, best = candidate, elapsed
    return result, best


# The CI array-kernel smoke gate: one long workload (many readings per
# trial) where the executor dominates wall time, so the object/array
# ratio is both large and stable.  Gated on the *best* paired ratio over
# a few repeats — one-sided noise (a background stall inflating either
# side) cannot produce a false pass and a false fail needs every repeat
# to stall the same way.
SMOKE_MATRIX = "multi"
SMOKE_ROW = "conservative"
SMOKE_ALGORITHM = "AD-5"
SMOKE_N_UPDATES = 600
SMOKE_SEEDS = 10
SMOKE_REPEAT = 3
SMOKE_BASE_SEED = 20010800

#: RunResult fields compared between kernels (everything observable;
#: ``condition``/``config`` are fresh objects per run and identity-biased).
_RUN_FIELDS = (
    "sent", "sent_log", "received", "ce_alerts", "ad_arrivals",
    "ad_arrival_times", "displayed", "filtered", "missed_while_down",
    "dm_suppressed",
)


def _prepare_trial(spec):
    """Prebuild a spec's simulator inputs so timing covers run_system only.

    The config is handed back as a factory: delay models (PerLinkSkewDelay)
    keep per-run state, so every execution needs a fresh one.
    """
    from repro.components.system import SystemConfig
    from repro.simulation.rng import RandomStreams

    scenario = spec.resolve_scenario()
    streams = RandomStreams(spec.seed)
    condition = scenario.make_condition()
    workload = scenario.make_workload(streams, spec.n_updates)

    def make_config():
        kwargs = {}
        if scenario.front_delay_factory is not None:
            kwargs["front_delay"] = scenario.front_delay_factory()
        return SystemConfig(
            replication=spec.replication,
            ad_algorithm=spec.algorithm,
            front_loss=scenario.front_loss,
            **kwargs,
        )

    return condition, workload, make_config, spec.seed


def _sweep_kernel(prepared, kernel: str):
    """Run every prepared trial under one kernel; (results, summed seconds).

    The cyclic GC is paused over the sweep (after an up-front collect):
    collection pauses land arbitrarily and charge whichever kernel is
    running, which at array-kernel sweep durations swings the measured
    ratio by 2x and more.
    """
    import gc

    from repro.components.system import run_system

    total = 0.0
    results = []
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for condition, workload, make_config, seed in prepared:
            config = make_config()
            start = time.perf_counter()
            run = run_system(
                condition, workload, config, seed=seed, kernel=kernel
            )
            total += time.perf_counter() - start
            results.append(run)
    finally:
        if gc_was_enabled:
            gc.enable()
    return results, total


def _assert_runs_identical(object_runs, array_runs) -> None:
    for index, (a, b) in enumerate(zip(object_runs, array_runs)):
        for field in _RUN_FIELDS:
            if getattr(a, field) != getattr(b, field):
                raise AssertionError(
                    f"kernel divergence on trial {index}, field {field!r} — "
                    "the speedup is void; investigate before trusting timings"
                )


def _compare_kernels(prepared, repeat: int) -> dict:
    """Paired object/array sweeps over prebuilt trials.

    Returns best (minimum) totals per kernel plus the best paired ratio
    across repeats; the first repeat differentially verifies the runs.
    """
    object_best = array_best = None
    ratios = []
    for round_index in range(max(1, repeat)):
        object_runs, object_s = _sweep_kernel(prepared, "object")
        array_runs, array_s = _sweep_kernel(prepared, "array")
        if round_index == 0:
            _assert_runs_identical(object_runs, array_runs)
        object_best = object_s if object_best is None else min(object_best, object_s)
        array_best = array_s if array_best is None else min(array_best, array_s)
        ratios.append(object_s / array_s)
    return {
        "trials": len(prepared),
        "object_s": object_best,
        "array_s": array_best,
        "speedup_best": max(ratios),
        "repeat": max(1, repeat),
    }


def run_kernel_benchmark(trials: int, repeat: int = 3) -> dict:
    """Executor-only kernel comparison on the Table 3 main-grid specs."""
    from repro.engine.plan import plan_table

    specs = plan_table(
        TABLE_ID, trials=trials, n_updates=N_UPDATES, completeness_trials=0
    ).specs
    prepared = [_prepare_trial(spec) for spec in specs]
    return _compare_kernels(prepared, repeat)


def run_kernel_smoke(repeat: int = SMOKE_REPEAT) -> dict:
    """The CI gate workload: few long trials, best-of-``repeat`` ratio."""
    from repro.engine.spec import TrialSpec

    specs = [
        TrialSpec(
            SMOKE_MATRIX, SMOKE_ROW, SMOKE_ALGORITHM,
            SMOKE_BASE_SEED + index, SMOKE_N_UPDATES,
        )
        for index in range(SMOKE_SEEDS)
    ]
    prepared = [_prepare_trial(spec) for spec in specs]
    comparison = _compare_kernels(prepared, repeat)
    return {
        "workload": {
            "matrix": SMOKE_MATRIX,
            "row": SMOKE_ROW,
            "algorithm": SMOKE_ALGORITHM,
            "n_updates": SMOKE_N_UPDATES,
            "seeds": SMOKE_SEEDS,
        },
        "object_s": round(comparison["object_s"], 3),
        "array_s": round(comparison["array_s"], 3),
        "speedup_best_of_repeat": round(comparison["speedup_best"], 2),
        "repeat": comparison["repeat"],
    }


def run_benchmark(trials: int, repeat: int = 1, kernel: str = "array") -> dict:
    kwargs = dict(
        trials=trials,
        n_updates=N_UPDATES,
        completeness_trials=None,
        completeness_n_updates=LEGACY_COMPLETENESS_N,
    )

    def legacy_build():
        # The legacy baseline approximates the seed, which only had the
        # event-object executor — so it is pinned to kernel="object".
        with legacy_completeness_backend(), reference_caches_disabled():
            return build_table(TABLE_ID, kernel="object", **kwargs)

    legacy, legacy_s = _time(legacy_build)
    engine, engine_s = _best_time(
        lambda: build_table_parallel(
            TABLE_ID, processes="auto", kernel=kernel, **kwargs
        ),
        repeat,
    )
    if engine.tallies != legacy.tallies:
        raise AssertionError(
            "engine tallies diverge from the legacy baseline — the speedup "
            "is void; investigate before trusting any timing"
        )

    # The same workload with per-trial CountersTracers attached, to
    # document what observability costs when it is actually on.  Verdicts
    # must be unchanged — tracing is read-only by contract.
    traced, traced_s = _time(
        lambda: build_table_parallel(
            TABLE_ID, processes="auto", collect_counters=True, kernel=kernel,
            **kwargs
        )
    )
    if traced.measured_grid() != engine.measured_grid():
        raise AssertionError(
            "tracing perturbed the table verdicts — observability must be "
            "read-only"
        )

    _, lifted_s = _time(
        lambda: build_table_parallel(
            TABLE_ID,
            processes="auto",
            trials=trials,
            n_updates=N_UPDATES,
            completeness_trials=None,
            completeness_n_updates=LIFTED_COMPLETENESS_N,
            kernel=kernel,
        )
    )

    kernels = run_kernel_benchmark(trials, repeat=max(3, repeat))
    smoke = run_kernel_smoke()

    return {
        "workload": {
            "table": TABLE_ID,
            "trials": trials,
            "n_updates": N_UPDATES,
            "completeness_n_updates": LEGACY_COMPLETENESS_N,
            "lifted_completeness_n_updates": LIFTED_COMPLETENESS_N,
            "kernel": kernel,
        },
        "timings": {
            "legacy_s": round(legacy_s, 3),
            "engine_s": round(engine_s, 3),
            "engine_lifted_n8_s": round(lifted_s, 3),
            "engine_counters_s": round(traced_s, 3),
            "speedup_vs_legacy": round(legacy_s / engine_s, 2),
            "counters_overhead": round(traced_s / engine_s, 2),
            "legacy_per_trial_ms": round(1000 * legacy_s / trials, 3),
            "engine_per_trial_ms": round(1000 * engine_s / trials, 3),
            # Executor-only (run_system span, inputs prebuilt) over the
            # Table 3 main grid — the honest per-trial kernel comparison.
            "object_sim_per_trial_ms": round(
                1000 * kernels["object_s"] / kernels["trials"], 3
            ),
            "array_sim_per_trial_ms": round(
                1000 * kernels["array_s"] / kernels["trials"], 3
            ),
            "speedup_array_vs_object": round(kernels["speedup_best"], 2),
        },
        "kernel_smoke": smoke,
        "tallies_identical": True,
        "host": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
    }


def check_regression(result: dict, baseline_path: Path, tolerance: float) -> bool:
    """True iff the current per-trial engine time is within ``tolerance``x
    of the committed baseline (trial counts may differ between runs)."""
    baseline = json.loads(baseline_path.read_text())
    committed = baseline["timings"]["engine_per_trial_ms"]
    current = result["timings"]["engine_per_trial_ms"]
    ratio = current / committed
    print(
        f"engine per-trial: {current:.3f} ms vs committed "
        f"{committed:.3f} ms ({ratio:.2f}x, tolerance {tolerance:.2f}x)"
    )
    return ratio <= tolerance


def emit_traces(directory: Path, seed: int = 20010800) -> list[Path]:
    """Record one replay-verified JSONL trace per Table 3 row.

    Each trace is immediately replayed; a divergence means the
    determinism contract broke on this host and the benchmark numbers
    cannot be trusted, so it raises instead of writing a bad artifact.
    """
    from repro.engine.spec import TrialSpec
    from repro.observability import record_trial, replay_trace
    from repro.workloads.scenarios import ROW_ORDER

    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for index, row in enumerate(ROW_ORDER):
        spec = TrialSpec("multi", row, "AD-5", seed + index, 10)
        trace = record_trial(spec)
        result = replay_trace(trace)
        if not result.identical:
            raise AssertionError(
                f"trace for {row} failed replay: {result.describe()}"
            )
        paths.append(trace.write(directory / f"{TABLE_ID}_{row}.jsonl"))
    return paths


def test_engine_throughput(benchmark):
    """Harness entry point: reduced-trials run with artifact output."""
    from benchmarks.conftest import save_result

    result = benchmark.pedantic(
        lambda: run_benchmark(trials=30), rounds=1, iterations=1
    )
    timings = result["timings"]
    save_result(
        "engine_throughput",
        f"{TABLE_ID} x 30 trials: legacy {timings['legacy_s']}s, "
        f"engine {timings['engine_s']}s "
        f"({timings['speedup_vs_legacy']}x vs in-repo legacy baseline; "
        "the seed commit itself is slower still), "
        f"engine @ n=8 completeness {timings['engine_lifted_n8_s']}s, "
        f"engine with counters {timings['engine_counters_s']}s "
        f"({timings['counters_overhead']}x)",
    )
    save_result(
        "kernel_comparison",
        f"executor-only {TABLE_ID} grid: object "
        f"{timings['object_sim_per_trial_ms']} ms/trial vs array "
        f"{timings['array_sim_per_trial_ms']} ms/trial "
        f"({timings['speedup_array_vs_object']}x, runs field-identical); "
        f"smoke n={result['kernel_smoke']['workload']['n_updates']}: "
        f"{result['kernel_smoke']['speedup_best_of_repeat']}x",
    )
    traces = emit_traces(RESULT_PATH.parent / "results" / "traces")
    save_result(
        "trace_replay",
        f"{len(traces)} {TABLE_ID} traces recorded and replayed "
        "bit-identically (see traces/)",
    )
    # Identical tallies are asserted inside run_benchmark; the ratio
    # floors are deliberately loose — shared CI runners are noisy, and
    # the strict array-kernel gate lives in --array-gate (perf-smoke).
    assert timings["speedup_vs_legacy"] >= 1.5
    assert timings["speedup_array_vs_object"] >= 1.5


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS)
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"write the result JSON here (default: {RESULT_PATH})",
    )
    parser.add_argument(
        "--check-against",
        type=Path,
        default=None,
        help="committed BENCH_trials.json to gate against; exits 1 when the "
        "per-trial engine time regresses beyond --tolerance",
    )
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="time the engine path this many times and gate on the best "
        "run (noise-robust; use >= 3 with tight tolerances)",
    )
    parser.add_argument(
        "--emit-trace",
        type=Path,
        default=None,
        metavar="DIR",
        help="record one replay-verified JSONL trace per table row to DIR",
    )
    parser.add_argument(
        "--kernel",
        choices=("object", "array"),
        default="array",
        help="trial executor for the engine-path timings (the legacy "
        "baseline is always the object kernel, like the seed)",
    )
    parser.add_argument(
        "--array-gate",
        type=float,
        default=None,
        metavar="MIN_SPEEDUP",
        help="run only the kernel smoke comparison and exit 1 unless the "
        "best-of---smoke-repeat array/object speedup reaches MIN_SPEEDUP",
    )
    parser.add_argument(
        "--smoke-repeat",
        type=int,
        default=SMOKE_REPEAT,
        help="paired sweeps for the smoke comparison (gate takes the best)",
    )
    args = parser.parse_args(argv)
    if args.check_against is not None and not args.check_against.is_file():
        # Validate before the (expensive) benchmark run, not after.
        parser.error(f"baseline not found: {args.check_against}")

    if args.array_gate is not None:
        smoke = run_kernel_smoke(repeat=args.smoke_repeat)
        speedup = smoke["speedup_best_of_repeat"]
        workload = smoke["workload"]
        print(
            f"array-kernel smoke: {workload['matrix']}/{workload['row']} "
            f"{workload['algorithm']} n={workload['n_updates']} x "
            f"{workload['seeds']} seeds: object {smoke['object_s']}s, "
            f"array {smoke['array_s']}s, best-of-{smoke['repeat']} speedup "
            f"{speedup}x (gate {args.array_gate}x)"
        )
        if speedup < args.array_gate:
            print("FAIL: array kernel below the speedup gate", file=sys.stderr)
            return 1
        print("OK: array kernel clears the gate")
        return 0

    result = run_benchmark(args.trials, repeat=args.repeat, kernel=args.kernel)
    timings = result["timings"]
    print(
        f"{TABLE_ID} x {args.trials} trials: "
        f"legacy {timings['legacy_s']}s, engine {timings['engine_s']}s "
        f"({timings['speedup_vs_legacy']}x), "
        f"engine @ n=8 completeness {timings['engine_lifted_n8_s']}s, "
        f"engine with counters {timings['engine_counters_s']}s "
        f"({timings['counters_overhead']}x)"
    )
    print(
        f"kernels (executor-only, {TABLE_ID} grid): "
        f"object {timings['object_sim_per_trial_ms']} ms/trial, "
        f"array {timings['array_sim_per_trial_ms']} ms/trial "
        f"({timings['speedup_array_vs_object']}x); smoke "
        f"(n={result['kernel_smoke']['workload']['n_updates']}): "
        f"{result['kernel_smoke']['speedup_best_of_repeat']}x"
    )

    if args.emit_trace is not None:
        paths = emit_traces(args.emit_trace)
        print(f"recorded and replay-verified {len(paths)} traces in "
              f"{args.emit_trace}")

    if args.check_against is not None:
        if not check_regression(result, args.check_against, args.tolerance):
            print("FAIL: engine throughput regressed", file=sys.stderr)
            return 1
        print("OK: within tolerance")
        return 0

    output = args.output or RESULT_PATH
    output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
