"""AD-3 and AD-4 property grids (§4.3, §4.4).

The paper states these as deltas from Tables 1 and 2:

* AD-3: "very similar to Table 1 except that the last row (Aggressive
  Triggering) is also consistent" (Theorem 7 guarantees consistency).
* AD-4: "very similar to Table 2 except that Aggressive Triggering also
  becomes consistent" (Theorem 9: ordered AND consistent everywhere).
"""

from benchmarks.conftest import save_result
from repro.analysis.tables import build_table, render_table

TRIALS = 150
N_UPDATES = 40


def test_ad3_grid(benchmark):
    result = benchmark.pedantic(
        lambda: build_table("ad3", trials=TRIALS, n_updates=N_UPDATES),
        rounds=1,
        iterations=1,
    )
    text = render_table(result)
    save_result("ad3", text)
    assert result.matches_paper(), text


def test_ad4_grid(benchmark):
    result = benchmark.pedantic(
        lambda: build_table("ad4", trials=TRIALS, n_updates=N_UPDATES),
        rounds=1,
        iterations=1,
    )
    text = render_table(result)
    save_result("ad4", text)
    assert result.matches_paper(), text
