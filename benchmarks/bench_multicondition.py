"""Appendix D — multiple conditions (Example 4 and the two reductions).

* Example 4: interdependent conditions A ("x hotter than y") and B ("y
  hotter than x") both trigger when their CEs see different update
  interleavings — conflicting alerts without any replication.
* Figure D-7(c) reduction: separate per-condition CE pairs + one AD
  running an independent filter per stream; each stream individually
  keeps its single-condition guarantees.
* Figure D-8 reduction: co-located conditions combined as C = A ∨ B
  behave as one single-condition system.
"""

from benchmarks.conftest import save_result
from repro.components.system import SystemConfig, run_system
from repro.core.condition import c1
from repro.core.expressions import H
from repro.core.condition import ExpressionCondition
from repro.multicondition.combined import (
    DisjunctionCondition,
    PerConditionAD,
    example_4,
)
from repro.displayers.ad2 import AD2
from repro.props.orderedness import is_alert_sequence_ordered

TRIALS = 100


def test_example_4(benchmark):
    alerts_a, alerts_b = benchmark.pedantic(example_4, rounds=1, iterations=1)
    assert alerts_a and alerts_b
    save_result(
        "example4",
        "Example 4 reproduced: condition A alerted "
        f"{[a.shorthand() for a in alerts_a]} while condition B alerted "
        f"{[a.shorthand() for a in alerts_b]} on the same temperature "
        "change — contradictory messages without replication; matches paper.",
    )


def test_per_condition_ad_keeps_guarantees(benchmark):
    """Fig D-7(c): per-stream AD-2 instances keep each stream ordered."""

    def run():
        cond_a = c1(threshold=3000, name="A")
        cond_b = c1(threshold=3100, name="B")
        workload = {
            "x": [(t * 10.0, 2950.0 + (t % 7) * 40.0) for t in range(30)]
        }
        config = SystemConfig(replication=2, ad_algorithm="pass", front_loss=0.3)
        ordered_streams = 0
        total_streams = 0
        for trial in range(TRIALS):
            arrivals = []
            for cond in (cond_a, cond_b):
                result = run_system(cond, workload, config, seed=8200 + trial)
                arrivals.extend(result.ad_arrivals)
            arrivals.sort(key=lambda a: a.seqno("x"))  # arbitrary merge
            demux = PerConditionAD({"A": AD2("x"), "B": AD2("x")})
            demux.offer_all(arrivals)
            for name in ("A", "B"):
                total_streams += 1
                if is_alert_sequence_ordered(list(demux.stream(name)), ["x"]):
                    ordered_streams += 1
        return ordered_streams, total_streams

    ordered_streams, total_streams = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "multicondition_demux",
        f"Per-condition AD (Fig D-7c): {ordered_streams}/{total_streams} "
        "streams ordered under per-stream AD-2 — matches the appendix's "
        "claim that single-condition analysis applies per stream.",
    )
    assert ordered_streams == total_streams


def test_simulated_separate_ce_topology(benchmark):
    """Fig D-7(c) on the full simulator: per-stream guarantees at scale."""
    from repro.multicondition.system import MultiConditionSystem
    from repro.props.consistency import check_consistency_single

    def run():
        cond_a = ExpressionCondition("hot", H.x[0].value > 3000.0)
        cond_b = ExpressionCondition(
            "spike", H.x[0].value - H.x[-1].value > 150.0
        )
        workload = {
            "x": [(t * 10.0, 2900.0 + (t % 6) * 70.0) for t in range(30)]
        }
        config = SystemConfig(replication=2, front_loss=0.3, ad_algorithm="AD-4")
        ordered_ok = consistent_ok = total = 0
        for seed in range(60):
            system = MultiConditionSystem(
                [cond_a, cond_b], workload, config, seed=9000 + seed
            )
            result = system.run()
            for name in ("hot", "spike"):
                total += 1
                stream = list(result.streams[name])
                if is_alert_sequence_ordered(stream, ["x"]):
                    ordered_ok += 1
                if check_consistency_single(stream, "x"):
                    consistent_ok += 1
        return ordered_ok, consistent_ok, total

    ordered_ok, consistent_ok, total = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    save_result(
        "multicondition_system",
        f"Simulated Fig D-7(c) (separate CEs, per-stream AD-4): "
        f"{ordered_ok}/{total} streams ordered, {consistent_ok}/{total} "
        "consistent — single-condition guarantees apply per stream, as "
        "Appendix D claims.",
    )
    assert ordered_ok == total
    assert consistent_ok == total


def test_disjunction_reduction(benchmark):
    """Fig D-8: C = A ∨ B triggers exactly when either constituent does."""

    def run():
        cond_a = ExpressionCondition("A", H.x[0].value > 3000.0)
        cond_b = ExpressionCondition("B", H.x[0].value < 2800.0)
        combined = DisjunctionCondition("C", [cond_a, cond_b])
        workload = {
            "x": [(t * 10.0, 2700.0 + (t % 5) * 100.0) for t in range(40)]
        }
        config = SystemConfig(replication=1, ad_algorithm="pass")
        run_a = run_system(cond_a, workload, config, seed=1)
        run_b = run_system(cond_b, workload, config, seed=1)
        run_c = run_system(combined, workload, config, seed=1)
        return run_a, run_b, run_c

    run_a, run_b, run_c = benchmark.pedantic(run, rounds=1, iterations=1)
    seqnos_a = {a.seqno("x") for a in run_a.displayed}
    seqnos_b = {a.seqno("x") for a in run_b.displayed}
    seqnos_c = {a.seqno("x") for a in run_c.displayed}
    assert seqnos_c == seqnos_a | seqnos_b
    save_result(
        "multicondition_disjunction",
        f"C = A∨B reduction: A fired on {sorted(seqnos_a)}, B on "
        f"{sorted(seqnos_b)}, combined C on {sorted(seqnos_c)} — exactly "
        "the union, as Figure D-8 requires.",
    )
