"""Theorems 5, 7 and 9 — maximality of AD-2, AD-3 and AD-4.

Maximality ("no P-guaranteeing algorithm strictly dominates G") is a
statement over all algorithms; the measurable core of the paper's proofs
is that *every alert the algorithm discards would violate P if
displayed*.  The greedy probe replays simulated arrival streams and, for
each discarded alert, re-checks the property with the alert appended to
the displayed prefix.  Zero "unjustified" discards = measured agreement
with the theorem; any unjustified discard would be a counterexample.

Property notes: the probes use *strict* orderedness (no repeated seqno)
and duplicate-free consistency — displaying a repeated/duplicate alert is
a display defect AD-2/AD-3 are entitled to prevent (see DESIGN.md).
"""

from benchmarks.conftest import save_result
from repro.analysis.experiments import maximality_experiment

TRIALS = 400
N_UPDATES = 35


def test_maximality(benchmark):
    results = benchmark.pedantic(
        lambda: maximality_experiment(trials=TRIALS, n_updates=N_UPDATES),
        rounds=1,
        iterations=1,
    )
    lines = ["Maximality probes (paper: every discard justified)"]
    lines.append(f"{'claim':<40} {'discards':>9} {'unjustified':>12}")
    ok = True
    for name, result in results.items():
        lines.append(f"{name:<40} {result.discards:>9} {result.unjustified:>12}")
        ok = ok and result.maximal
    text = "\n".join(lines) + f"\npaper agreement: {'YES' if ok else 'NO'}"
    save_result("maximality", text)
    for name, result in results.items():
        assert result.maximal, f"{name}: unjustified discard found"
        assert result.discards > 0, f"{name}: probe exercised no discards"
