"""Table 3 and §5.2 — multi-variable systems under AD-5, AD-6, and AD-1.

Paper claims:

* Table 3 (AD-5, Lemmas 4-6):

      Scenario            Ord.  Comp.  Cons.
      Lossless             ✓     ✗      ✓
      Lossy non-his.       ✓     ✗      ✓
      Lossy his. cons.     ✓     ✗      ✓
      Lossy his. aggr.     ✓     ✗      ✗

* AD-6 (§5.2): same but the aggressive row is also consistent.
* AD-1 (Theorem 10): neither ordered nor consistent (hence incomplete) —
  interleaving divergence alone breaks a multi-variable system.

Completeness cells use an extra batch of short-trace runs so the
exhaustive interleaving oracle is exact; the long-trace batch feeds the
orderedness/consistency cells.
"""

from benchmarks.conftest import save_result
from repro.analysis.parallel import build_table_parallel
from repro.analysis.tables import render_table

TRIALS = 60
N_UPDATES = 20
COMPLETENESS_TRIALS = 120
# The pruned DFS completeness checker decides 8 readings per variable
# comfortably; the enumeration it replaced capped this at 6.
COMPLETENESS_N = 8


def _build(table_id):
    return build_table_parallel(
        table_id,
        trials=TRIALS,
        n_updates=N_UPDATES,
        completeness_trials=COMPLETENESS_TRIALS,
        completeness_n_updates=COMPLETENESS_N,
        processes="auto",
    )


def test_table3_ad5(benchmark):
    result = benchmark.pedantic(lambda: _build("table3"), rounds=1, iterations=1)
    text = render_table(result)
    save_result("table3", text)
    assert result.matches_paper(), text


def test_ad6_grid(benchmark):
    result = benchmark.pedantic(lambda: _build("ad6"), rounds=1, iterations=1)
    text = render_table(result)
    save_result("ad6", text)
    assert result.matches_paper(), text


def test_ad1_multi_grid(benchmark):
    result = benchmark.pedantic(lambda: _build("ad1-multi"), rounds=1, iterations=1)
    text = render_table(result)
    save_result("ad1-multi", text)
    assert result.matches_paper(), text
