"""Coverage-guided fuzzing vs. uniform sampling — violations per budget.

The figure of merit is **distinct violating coverage signatures** (see
:mod:`repro.fuzz.coverage`): how many genuinely different ways of
violating the target property a search finds for a fixed number of
simulator runs.  Raw violation *counts* would reward finding the same
boring violation two thousand times; distinct signatures reward breadth.

The cell under test is Table 2's consistency ✗-cell — the aggressive
single-variable row under AD-2, the weakest algorithm whose grid leaves
consistency unguaranteed.  (AD-3 and up *guarantee* consistency, so a
consistency hunt there must come back empty; the fuzzer's differential
tests pin that separately.)

Both searches spend the same budget:

* **fuzz**: :class:`repro.fuzz.engine.FuzzEngine` with its default
  corpus/mutation settings;
* **uniform**: :func:`repro.fuzz.engine.uniform_specs` — sequential
  seeds, default knobs, no faults, exactly how the table grids sample.

The benchmark then shrinks the first finding to a 1-minimal witness and
replays its recorded trace, so every published ratio is backed by at
least one bit-replayable counterexample.

Run directly (writes ``benchmarks/results/fuzz.txt``)::

    PYTHONPATH=src python benchmarks/bench_fuzz.py --budget 2000

CI gate (reduced budget; fails unless the fuzzer finds at least
``--min-ratio`` times as many distinct violating signatures)::

    PYTHONPATH=src python benchmarks/bench_fuzz.py \
        --budget 400 --check --min-ratio 1.5
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.analysis.witness import violates
from repro.fuzz import (
    FuzzConfig,
    FuzzEngine,
    coverage_signature,
    shrink_spec,
    signature_key,
    uniform_specs,
)
from repro.observability import replay_trace

ROW = "aggressive"
ALGORITHM = "AD-2"
TARGET = "consistent"
DEFAULT_BUDGET = 2000
MIN_RATIO = 1.5
RESULT_PATH = Path(__file__).resolve().parent / "results" / "fuzz.txt"


def uniform_baseline(config: FuzzConfig) -> dict:
    """Distinct (violating) signatures from uniform sampling at the same
    budget, scored with the exact signature the fuzzer uses."""
    signatures: set[tuple[str, ...]] = set()
    violating: set[tuple[str, ...]] = set()
    violations = 0
    for spec in uniform_specs(config):
        report = spec.execute()
        key = signature_key(
            coverage_signature(report.counters, report.summary)
        )
        signatures.add(key)
        if violates(report, config.target):
            violations += 1
            violating.add(key)
    return {
        "distinct_signatures": len(signatures),
        "distinct_violating_signatures": len(violating),
        "violations": violations,
    }


def run_comparison(budget: int, fuzz_seed: int = 0) -> dict:
    config = FuzzConfig(
        matrix="single",
        row=ROW,
        algorithm=ALGORITHM,
        target=TARGET,
        budget=budget,
        fuzz_seed=fuzz_seed,
    )

    start = time.perf_counter()
    fuzz = FuzzEngine(config).run()
    fuzz_s = time.perf_counter() - start

    start = time.perf_counter()
    uniform = uniform_baseline(config)
    uniform_s = time.perf_counter() - start

    fuzz_violating = fuzz.distinct_violating_signatures
    uniform_violating = uniform["distinct_violating_signatures"]
    return {
        "cell": f"single/{ROW} {ALGORITHM} target={TARGET}",
        "budget": budget,
        "fuzz_seed": fuzz_seed,
        "fuzz": {
            "distinct_violating_signatures": fuzz_violating,
            "distinct_signatures": fuzz.distinct_signatures,
            "corpus_size": fuzz.corpus_size,
            "features": fuzz.features,
            "seconds": round(fuzz_s, 2),
        },
        "uniform": {
            "distinct_violating_signatures": uniform_violating,
            "distinct_signatures": uniform["distinct_signatures"],
            "violations": uniform["violations"],
            "seconds": round(uniform_s, 2),
        },
        # Uniform finding zero would make the ratio infinite; clamp the
        # divisor so the comparison stays honest when that happens.
        "ratio": round(fuzz_violating / max(1, uniform_violating), 2),
        "findings": fuzz.findings,
    }


def minimize_first_finding(comparison: dict) -> str:
    """Shrink the first finding and verify its trace replays bit-identically.

    Raises if the shrunk witness fails replay — a published ratio with a
    non-reproducible witness behind it would be worthless.
    """
    findings = comparison["findings"]
    if not findings:
        raise AssertionError(
            f"no {TARGET} violation found on {comparison['cell']} at "
            f"budget {comparison['budget']} — the ✗-cell disappeared"
        )
    finding = findings[0]
    shrunk = shrink_spec(finding.witness_spec, finding.violation)
    replay = replay_trace(shrunk.trace)
    if not replay.identical:
        raise AssertionError(
            f"shrunk witness failed replay: {replay.describe()}"
        )
    spec = shrunk.spec
    return (
        f"1-minimal witness: seed={spec.seed} n_updates={spec.n_updates} "
        f"replication={spec.replication} "
        f"({shrunk.attempts} shrink runs, {shrunk.passes} passes), "
        f"trace replays bit-identically ({len(shrunk.trace.events)} events)"
    )


def format_result(comparison: dict, witness_line: str) -> str:
    fuzz, uniform = comparison["fuzz"], comparison["uniform"]
    return (
        f"{comparison['cell']} @ budget {comparison['budget']} "
        f"(fuzz seed {comparison['fuzz_seed']}): "
        f"fuzz {fuzz['distinct_violating_signatures']} distinct violating "
        f"signatures ({fuzz['distinct_signatures']} total, corpus "
        f"{fuzz['corpus_size']}, {fuzz['features']} features, "
        f"{fuzz['seconds']}s) vs uniform "
        f"{uniform['distinct_violating_signatures']} "
        f"({uniform['violations']} raw violations, "
        f"{uniform['distinct_signatures']} total signatures, "
        f"{uniform['seconds']}s) — {comparison['ratio']}x. "
        + witness_line
    )


def test_fuzz_vs_uniform(benchmark):
    """Harness entry point: reduced-budget run with artifact output."""
    from benchmarks.conftest import save_result

    comparison = benchmark.pedantic(
        lambda: run_comparison(budget=400), rounds=1, iterations=1
    )
    witness_line = minimize_first_finding(comparison)
    save_result("fuzz", format_result(comparison, witness_line))
    assert comparison["ratio"] >= MIN_RATIO


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET)
    parser.add_argument("--fuzz-seed", type=int, default=0)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless the ratio clears --min-ratio",
    )
    parser.add_argument("--min-ratio", type=float, default=MIN_RATIO)
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"write the result line here (default: {RESULT_PATH})",
    )
    args = parser.parse_args(argv)

    comparison = run_comparison(args.budget, fuzz_seed=args.fuzz_seed)
    witness_line = minimize_first_finding(comparison)
    text = format_result(comparison, witness_line)
    print(text)

    if args.check:
        if comparison["ratio"] < args.min_ratio:
            print(
                f"FAIL: ratio {comparison['ratio']} below "
                f"{args.min_ratio}",
                file=sys.stderr,
            )
            return 1
        print(f"OK: ratio {comparison['ratio']} >= {args.min_ratio}")
        return 0

    output = args.output or RESULT_PATH
    output.parent.mkdir(exist_ok=True)
    output.write_text(text + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
