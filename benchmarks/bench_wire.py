"""§2 wire-format ablation: how many bytes must an alert carry?

The paper observes that alerts need not ship full histories: AD-1 only
equality-tests them (a checksum suffices), AD-2/AD-5 read one seqno per
variable, AD-3/AD-4/AD-6 need the seqno lists.  This bench quantifies the
bandwidth each choice costs across degrees, and times the checksum
variant of AD-1 against the reference to show the equality-test
optimisation is free.
"""

import random

from benchmarks.conftest import save_result
from repro.core.alert import make_alert
from repro.core.update import Update
from repro.core.wire import (
    AlertEncoding,
    ChecksumAD1,
    encode_alert,
    minimum_encoding,
)
from repro.displayers.ad1 import AD1
from repro.displayers.registry import algorithm_names

N_ALERTS = 2000


def _alert_of_degree(degree: int, head: int):
    updates = [Update("x", head - i, float(i)) for i in range(degree)]
    return make_alert("c", {"x": updates})


def test_wire_sizes(benchmark):
    def run():
        rows = []
        for degree in (1, 2, 5, 10):
            alert = _alert_of_degree(degree, head=100)
            sizes = {
                enc.value: encode_alert(alert, enc).size_bytes
                for enc in AlertEncoding
            }
            rows.append((degree, sizes))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Alert wire size (bytes) by history degree and encoding"]
    lines.append(f"{'degree':>7} {'full':>6} {'seqnos':>7} {'heads':>6} {'checksum':>9}")
    for degree, sizes in rows:
        lines.append(
            f"{degree:>7} {sizes['full']:>6} {sizes['seqnos']:>7} "
            f"{sizes['heads']:>6} {sizes['checksum']:>9}"
        )
    lines.append("")
    lines.append("minimum encoding per algorithm (§2):")
    for name in algorithm_names():
        lines.append(f"  {name:<6} -> {minimum_encoding(name).value}")
    text = "\n".join(lines)
    save_result("wire_sizes", text)

    # FULL grows with degree; CHECKSUM is constant; HEADS <= SEQNOS <= FULL.
    for degree, sizes in rows:
        assert sizes["full"] >= sizes["seqnos"] >= sizes["heads"] >= 0
    assert rows[0][1]["checksum"] == rows[-1][1]["checksum"]


def test_checksum_ad1_equivalence_and_speed(benchmark):
    rng = random.Random(4)
    stream = [
        _alert_of_degree(3, head=rng.randint(5, 400)) for _ in range(N_ALERTS)
    ]
    reference = AD1()
    reference_decisions = [reference.offer(a) for a in stream]

    def run():
        ad = ChecksumAD1()
        return [ad.offer(a) for a in stream]

    decisions = benchmark(run)
    assert decisions == reference_decisions
