"""Ablations (not tables in the paper, but claims in its prose).

* **Loss sweep** — how violation rates scale with front-link loss, per
  algorithm.  The paper's grids say only which cells *can* be violated;
  this shows the ✗ cells growing from 0% (lossless, Theorem 1) with p,
  while the ✓ cells stay at exactly 0% at every p.
* **Replication sweep** — §2.1: "Analysis for systems with more than two
  CEs can be easily extended."  We verify the claim empirically: AD-4's
  guarantees stay intact at 3 and 4 replicas, while AD-1's violation
  rates *increase* with replication (more replicas = more conflicting
  retellings).
"""

from benchmarks.conftest import save_result
from repro.analysis.sweeps import loss_sweep, render_sweep, replication_sweep
from repro.engine import TrialEngine
from repro.workloads.scenarios import SINGLE_VARIABLE_SCENARIOS

TRIALS = 60
N_UPDATES = 30
LOSS_GRID = (0.0, 0.1, 0.2, 0.3, 0.5)
REPLICATION_GRID = (1, 2, 3, 4)


def test_loss_ablation(benchmark):
    scenario = SINGLE_VARIABLE_SCENARIOS["aggressive"]

    def run():
        with TrialEngine(processes="auto") as engine:
            return {
                algorithm: loss_sweep(
                    scenario,
                    algorithm,
                    LOSS_GRID,
                    trials=TRIALS,
                    n_updates=N_UPDATES,
                    engine=engine,
                )
                for algorithm in ("AD-1", "AD-2", "AD-3", "AD-4")
            }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n\n".join(
        render_sweep(f"loss sweep, aggressive condition, {algorithm}", points)
        for algorithm, points in sweeps.items()
    )
    save_result("ablation_loss", text)

    for algorithm, points in sweeps.items():
        lossless = points[0]
        # Theorem 1 at p=0 for every algorithm: nothing is violated.
        assert lossless.unordered_rate == 0.0, algorithm
        assert lossless.inconsistent_rate == 0.0, algorithm
    # The paper's guarantee columns stay at zero across the whole sweep:
    for point in sweeps["AD-2"]:
        assert point.unordered_rate == 0.0
    for point in sweeps["AD-3"]:
        assert point.inconsistent_rate == 0.0
    for point in sweeps["AD-4"]:
        assert point.unordered_rate == 0.0
        assert point.inconsistent_rate == 0.0
    # And AD-1's inconsistency grows with loss (monotone up to noise):
    ad1 = sweeps["AD-1"]
    assert ad1[-1].inconsistent_rate > ad1[1].inconsistent_rate >= 0.0


def test_replication_ablation(benchmark):
    scenario = SINGLE_VARIABLE_SCENARIOS["aggressive"]

    def run():
        with TrialEngine(processes="auto") as engine:
            return {
                algorithm: replication_sweep(
                    scenario,
                    algorithm,
                    REPLICATION_GRID,
                    trials=TRIALS,
                    n_updates=N_UPDATES,
                    engine=engine,
                )
                for algorithm in ("AD-1", "AD-4")
            }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n\n".join(
        render_sweep(f"replication sweep, aggressive condition, {algorithm}", points)
        for algorithm, points in sweeps.items()
    )
    save_result("ablation_replication", text)

    # One CE = the non-replicated system N: trivially ordered+consistent.
    ad1 = {int(p.value): p for p in sweeps["AD-1"]}
    assert ad1[1].unordered_rate == 0.0
    assert ad1[1].inconsistent_rate == 0.0
    # More replicas -> more conflicting retellings under AD-1:
    assert ad1[3].inconsistent_rate >= ad1[2].inconsistent_rate * 0.8
    assert ad1[2].inconsistent_rate > 0.0
    # AD-4's guarantees extend beyond two CEs, as the paper asserts:
    for point in sweeps["AD-4"]:
        assert point.unordered_rate == 0.0
        assert point.inconsistent_rate == 0.0
