"""§4.2's dismissed alternative, quantified: delayed display vs AD-2.

"Instead of discarding alerts that arrive out of order ... the AD could
preset a timeout value t ... unless system delays are bounded,
orderedness is no longer guaranteed."  The paper leaves it there; this
bench sweeps the timeout and measures the three-way tradeoff the choice
actually buys:

* alerts displayed (completeness pressure) — grows with t;
* runs with an ordering inversion — shrinks with t;
* mean added display latency — grows with t.

AD-2 is the t-=-drop-everything-late corner; t → ∞ is the paper's
"indefinite delays" corner.
"""

from benchmarks.conftest import save_result
from repro.components.system import MonitoringSystem, SystemConfig, run_system
from repro.core.condition import c1
from repro.displayers.delayed import attach_delayed_ad
from repro.props.orderedness import is_alert_sequence_ordered
from repro.simulation.rng import RandomStreams
from repro.workloads.generators import threshold_crossers

TRIALS = 80
N_UPDATES = 30
TIMEOUTS = (0.0, 5.0, 15.0, 30.0, 60.0)


def _workload(seed: int):
    streams = RandomStreams(seed)
    return {"x": threshold_crossers(streams.stream("w"), N_UPDATES)}


def test_delayed_display_tradeoff(benchmark):
    def run():
        rows = []
        config = SystemConfig(replication=2, front_loss=0.3, ad_algorithm="AD-2")

        # Baseline: AD-2 drops out-of-order alerts.
        displayed_total = 0
        unordered_runs = 0
        for seed in range(TRIALS):
            result = run_system(c1(), _workload(seed), config, seed=seed)
            displayed_total += len(result.displayed)
            if not is_alert_sequence_ordered(list(result.displayed), ["x"]):
                unordered_runs += 1
        rows.append(("AD-2", displayed_total / TRIALS, unordered_runs, 0.0))

        for timeout in TIMEOUTS:
            displayed_total = 0
            unordered_runs = 0
            latency_total = 0.0
            for seed in range(TRIALS):
                system = MonitoringSystem(
                    c1(), _workload(seed), config, seed=seed
                )
                delayed = attach_delayed_ad(system, timeout=timeout)
                system.run()
                delayed.flush()
                displayed_total += len(delayed.displayed)
                latency_total += delayed.mean_added_latency()
                if not is_alert_sequence_ordered(list(delayed.displayed), ["x"]):
                    unordered_runs += 1
            rows.append(
                (
                    f"t={timeout:g}",
                    displayed_total / TRIALS,
                    unordered_runs,
                    latency_total / TRIALS,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"Delayed display vs AD-2 ({TRIALS} runs, loss 0.3, back-delay "
        "spread ~30)",
        f"{'policy':>8} {'alerts/run':>11} {'unordered runs':>15} "
        f"{'added latency':>14}",
    ]
    for policy, mean_displayed, unordered, latency in rows:
        lines.append(
            f"{policy:>8} {mean_displayed:>11.2f} "
            f"{unordered:>11}/{TRIALS} {latency:>14.2f}"
        )
    text = "\n".join(lines)
    save_result("delayed_display", text)

    baseline = rows[0]
    by_policy = {policy: row for policy, *row in rows}
    # AD-2 never shows an inversion (Theorem 5's guarantee):
    assert baseline[2] == 0
    # Delayed display shows >= as many alerts as AD-2 at every timeout:
    for policy, mean_displayed, _, _ in rows[1:]:
        assert mean_displayed >= baseline[1] - 1e-9, policy
    # Inversions decrease as the timeout grows (paper's tradeoff):
    inversions = [unordered for _, _, unordered, _ in rows[1:]]
    assert inversions[0] >= inversions[-1]
    # ...and a timeout beyond the delay spread eliminates them entirely:
    assert inversions[-1] == 0
    # while latency rises with the timeout:
    latencies = [lat for _, _, _, lat in rows[1:]]
    assert latencies[-1] > latencies[0]
