"""Service-runtime benchmark — ingest throughput and update→alert latency.

Records one large update feed (the aggressive single-variable cell, whose
~40% front loss still leaves hundreds of deliveries and alerts), streams
it through the asyncio monitoring service over a real localhost socket,
and reports:

* **updates/sec ingested** — deliveries over the client's full
  send→result round trip (socket framing, routing, CE evaluation, AD
  merge and drain all included);
* **update→alert latency** p50/p99/max in ms — triggering update decoded
  off the socket → alert displayed by the AD merge consumer;
* **conformance** — the service's displayed bytes and verdicts must be
  identical to the array kernel's for the same feed (a benchmark of a
  wrong service would be meaningless).

Run directly (writes ``benchmarks/BENCH_service.json``)::

    PYTHONPATH=src python benchmarks/bench_service.py

CI smoke gate (best-of-``--repeat``, generous tolerance for shared
runners; conformance is gated unconditionally)::

    PYTHONPATH=src python benchmarks/bench_service.py \
        --repeat 3 --check --tolerance 4.0 \
        --check-against benchmarks/BENCH_service.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from pathlib import Path

from repro.engine.spec import TrialSpec
from repro.service import KernelRuntime, MonitorService, ServiceConfig, record_feed
from repro.service.server import execute_feed

SPEC = TrialSpec(
    matrix="single", row="aggressive", algorithm="AD-3", seed=7, n_updates=400
)
QUEUE_CAPACITY = 64
DEFAULT_REPEAT = 3
#: Allowed slowdown vs the committed baseline (CI runners are noisy and
#: heterogeneous; this gate catches order-of-magnitude regressions like
#: an accidental per-update drain, not microarchitecture drift).
DEFAULT_TOLERANCE = 4.0
RESULT_PATH = Path(__file__).resolve().parent / "BENCH_service.json"


def run_benchmark(repeat: int = DEFAULT_REPEAT) -> dict:
    feed = record_feed(SPEC)
    reference = KernelRuntime("array").execute(feed)

    async def one_round_trip():
        service = MonitorService(ServiceConfig(queue_capacity=QUEUE_CAPACITY))
        await service.start()
        try:
            started = time.perf_counter()
            result = await execute_feed(feed, service.host, service.port)
            elapsed = time.perf_counter() - started
        finally:
            await service.stop()
        return result, elapsed

    best = None
    result = None
    for _ in range(max(1, repeat)):
        result, elapsed = asyncio.run(one_round_trip())
        if best is None or elapsed < best:
            best = elapsed

    conformant = (
        result.displayed_bytes() == reference.displayed_bytes()
        and result.verdicts == reference.verdicts
    )
    return {
        "spec": {
            "row": SPEC.row, "algorithm": SPEC.algorithm, "seed": SPEC.seed,
            "n_updates": SPEC.n_updates, "replication": SPEC.replication,
        },
        "python": platform.python_version(),
        "queue_capacity": QUEUE_CAPACITY,
        "deliveries": len(feed.deliveries),
        "alerts": feed.total_alerts,
        "displayed": len(result.displayed),
        "conformant": conformant,
        "round_trip_s": best,
        "updates_per_s": len(feed.deliveries) / best,
        "latency_ms": result.latency_ms,
    }


def format_result(result: dict) -> str:
    latency = result["latency_ms"]
    return "\n".join([
        "Service runtime benchmark "
        f"({result['spec']['row']}/{result['spec']['algorithm']}, "
        f"{result['spec']['n_updates']} updates)",
        f"  deliveries ingested : {result['deliveries']}",
        f"  alerts merged       : {result['alerts']}"
        f" ({result['displayed']} displayed)",
        f"  round trip          : {result['round_trip_s'] * 1e3:.1f} ms",
        f"  throughput          : {result['updates_per_s']:,.0f} updates/s",
        f"  update→alert latency: p50={latency['p50']:.3f} ms "
        f"p99={latency['p99']:.3f} ms max={latency['max']:.3f} ms",
        f"  conformant vs array kernel: "
        f"{'YES' if result['conformant'] else 'NO'}",
    ])


def check(result: dict, baseline_path: Path, tolerance: float) -> int:
    failures: list[str] = []
    if not result["conformant"]:
        failures.append(
            "service output diverged from the array kernel (byte identity "
            "or verdicts)"
        )
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        floor = baseline["updates_per_s"] / tolerance
        if result["updates_per_s"] < floor:
            failures.append(
                f"throughput {result['updates_per_s']:,.0f} updates/s below "
                f"{floor:,.0f} (committed {baseline['updates_per_s']:,.0f} "
                f"/ tolerance {tolerance}x)"
            )
        ceiling = baseline["latency_ms"]["p99"] * tolerance
        if result["latency_ms"]["p99"] > ceiling:
            failures.append(
                f"p99 latency {result['latency_ms']['p99']:.3f} ms above "
                f"{ceiling:.3f} ms (committed "
                f"{baseline['latency_ms']['p99']:.3f} ms "
                f"* tolerance {tolerance}x)"
            )
    else:
        failures.append(f"no committed baseline at {baseline_path}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"OK: conformant; {result['updates_per_s']:,.0f} updates/s, "
            f"p99 {result['latency_ms']['p99']:.3f} ms within {tolerance}x "
            "of baseline"
        )
    return 1 if failures else 0


def test_service_throughput(benchmark):
    """Harness entry point: one round trip with artifact output."""
    from benchmarks.conftest import save_result

    result = benchmark.pedantic(
        lambda: run_benchmark(repeat=1), rounds=1, iterations=1
    )
    save_result("service", format_result(result))
    assert result["conformant"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=DEFAULT_REPEAT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless conformance and perf gates pass (no JSON "
        "is written)",
    )
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--check-against", type=Path, default=RESULT_PATH,
        help="committed baseline JSON for the perf gates",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help=f"write the result JSON here (default: {RESULT_PATH})",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(args.repeat)
    print(format_result(result))

    if args.check:
        return check(result, args.check_against, args.tolerance)

    output = args.output or RESULT_PATH
    output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
