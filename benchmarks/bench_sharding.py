"""Sharding benchmark — sustained throughput vs shard count at scale.

Generates a synthetic multi-tenant population (one cheap condition per
tenant, kinds cycling — see :mod:`repro.sharding.tenants`), partitions
it over the consistent-hash ring at each shard count, executes every
shard's batch through the full semantic core (CE replicas with real
front-link loss → stamp-ordered merge → online AD filter → canonical
rendering), and reports:

* **aggregate updates/sec per layout** — total ingested updates divided
  by the *slowest shard's* wall time.  This container is single-CPU, so
  shards run serially here; the critical-path quotient is exactly the
  sustained throughput an N-worker deployment would see, because shards
  share no state (tenants are pure functions of their index) and the
  XOR-digest check below proves the per-shard batches are independent.
  What the sweep measures is therefore the *partition quality* of the
  ring — speedup = total work / max shard work — not multiprocessing
  overhead;
* **speedup vs one shard** — with 64 virtual nodes the ring's balance
  bound keeps the largest shard near the ideal 1/N share, so the
  4-shard layout must clear a structural ≥ 2x floor (gated in CI);
* **cross-layout conformance** — every layout folds its per-tenant
  output digests into an order-independent XOR aggregate; all layouts
  (and the committed baseline) must agree bit-for-bit, or the benchmark
  is measuring a wrong sharding.

Run directly at full scale (writes ``benchmarks/BENCH_sharding.json``)::

    PYTHONPATH=src python benchmarks/bench_sharding.py

CI smoke gate (small population; digest equality, the structural
speedup floor, and per-tenant cost vs the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_sharding.py \
        --conditions 5000 --check --tolerance 4.0 \
        --check-against benchmarks/BENCH_sharding.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.sharding.ring import ShardConfig
from repro.sharding.tenants import (
    ShardBatchResult,
    partition_tenants,
    run_shard,
)

SHARD_COUNTS = (1, 2, 4, 8)
DEFAULT_CONDITIONS = 100_000
DEFAULT_SEED = 7
#: Structural floor on the 4-shard speedup: the ring's balance bound
#: (64 vnodes) keeps the largest shard well under half the population,
#: so the critical path must at least halve.  A miss means the ring is
#: hoarding tenants, not that the runner is slow.
SPEEDUP_FLOOR = 2.0
#: Allowed per-tenant slowdown vs the committed baseline (CI runners
#: are noisy; this catches an accidental quadratic, not clock drift).
DEFAULT_TOLERANCE = 4.0
RESULT_PATH = Path(__file__).resolve().parent / "BENCH_sharding.json"


def run_layout(conditions: int, shards: int, seed: int) -> dict:
    """Partition the population and execute every shard, timing each."""
    config = ShardConfig(shards=shards)
    partition = partition_tenants(conditions, config)
    batches: list[ShardBatchResult] = []
    elapsed: list[float] = []
    for shard, tenant_indices in enumerate(partition):
        started = time.perf_counter()
        batches.append(run_shard(shard, tenant_indices, seed))
        elapsed.append(time.perf_counter() - started)
    updates = sum(batch.updates for batch in batches)
    critical_path = max(elapsed)
    return {
        "shards": shards,
        "tenants_per_shard": [len(p) for p in partition],
        "updates": updates,
        "alerts": sum(batch.alerts for batch in batches),
        "displayed": sum(batch.displayed for batch in batches),
        "digest": ShardBatchResult.combine_digests(
            [batch.digest for batch in batches]
        ),
        "critical_path_s": critical_path,
        "total_cpu_s": sum(elapsed),
        "updates_per_s": updates / critical_path,
    }


def run_benchmark(
    conditions: int = DEFAULT_CONDITIONS,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    seed: int = DEFAULT_SEED,
) -> dict:
    # Warm caches (imports, expression compilation, allocator) so the
    # first timed layout is not charged the process cold start.
    run_shard(0, list(range(min(50, conditions))), seed)
    layouts = [
        run_layout(conditions, shards, seed) for shards in shard_counts
    ]
    digests = {layout["digest"] for layout in layouts}
    base = layouts[0]["updates_per_s"]
    for layout in layouts:
        layout["speedup"] = layout["updates_per_s"] / base
    return {
        "conditions": conditions,
        "seed": seed,
        "python": platform.python_version(),
        "conformant": len(digests) == 1,
        "digest": layouts[0]["digest"],
        "layouts": layouts,
    }


def format_result(result: dict) -> str:
    lines = [
        f"Sharding benchmark ({result['conditions']:,} conditions, "
        f"seed {result['seed']})",
        "  shards  max/shard   critical path   aggregate throughput  speedup",
    ]
    for layout in result["layouts"]:
        lines.append(
            f"  {layout['shards']:>6}  {max(layout['tenants_per_shard']):>9,}"
            f"   {layout['critical_path_s']:>11.2f} s"
            f"   {layout['updates_per_s']:>16,.0f} u/s"
            f"   {layout['speedup']:>5.2f}x"
        )
    lines.append(
        "  cross-layout digests: "
        + ("IDENTICAL" if result["conformant"] else "DIVERGED")
    )
    return "\n".join(lines)


def _layout(result: dict, shards: int) -> dict | None:
    for layout in result["layouts"]:
        if layout["shards"] == shards:
            return layout
    return None


def check(result: dict, baseline_path: Path, tolerance: float) -> int:
    failures: list[str] = []
    if not result["conformant"]:
        failures.append(
            "shard layouts produced different XOR output digests — the "
            "partition changed tenant semantics"
        )
    four = _layout(result, 4)
    if four is None:
        failures.append("no 4-shard layout in the sweep to gate on")
    elif four["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"4-shard speedup {four['speedup']:.2f}x below the structural "
            f"{SPEEDUP_FLOOR}x floor (critical path "
            f"{four['critical_path_s']:.2f}s vs single-shard "
            f"{result['layouts'][0]['critical_path_s']:.2f}s) — the ring "
            "is hoarding tenants on one shard"
        )
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        if result["conditions"] == baseline["conditions"]:
            if result["digest"] != baseline["digest"]:
                failures.append(
                    "output digest diverged from the committed baseline "
                    "at equal population — tenant semantics changed"
                )
        # Per-tenant cost is population-size independent; compare it so
        # a small CI sweep can still gate against the full-scale run.
        committed = baseline["layouts"][0]
        committed_cost = committed["critical_path_s"] / committed["updates"]
        cost = (
            result["layouts"][0]["critical_path_s"]
            / result["layouts"][0]["updates"]
        )
        if cost > committed_cost * tolerance:
            failures.append(
                f"per-update cost {cost * 1e6:.1f} us above "
                f"{committed_cost * tolerance * 1e6:.1f} us (committed "
                f"{committed_cost * 1e6:.1f} us * tolerance {tolerance}x)"
            )
    else:
        failures.append(f"no committed baseline at {baseline_path}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        four = _layout(result, 4)
        print(
            f"OK: digests identical across layouts; 4-shard speedup "
            f"{four['speedup']:.2f}x >= {SPEEDUP_FLOOR}x; per-update cost "
            f"within {tolerance}x of baseline"
        )
    return 1 if failures else 0


def test_sharding_throughput(benchmark):
    """Harness entry point: a small sweep with artifact output."""
    from benchmarks.conftest import save_result

    result = benchmark.pedantic(
        lambda: run_benchmark(conditions=5000), rounds=1, iterations=1
    )
    save_result("sharding", format_result(result))
    assert result["conformant"]
    assert _layout(result, 4)["speedup"] >= SPEEDUP_FLOOR


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--conditions", type=int, default=DEFAULT_CONDITIONS,
        help=f"tenant population size (default {DEFAULT_CONDITIONS:,})",
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=list(SHARD_COUNTS),
        help="shard counts to sweep (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless digest, speedup and cost gates pass (no "
        "JSON is written)",
    )
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--check-against", type=Path, default=RESULT_PATH,
        help="committed baseline JSON for the cost gate",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help=f"write the result JSON here (default: {RESULT_PATH})",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(args.conditions, tuple(args.shards), args.seed)
    print(format_result(result))

    if args.check:
        return check(result, args.check_against, args.tolerance)

    output = args.output or RESULT_PATH
    output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
