"""Table 2 — single-variable systems under Algorithm AD-2 (§4.2).

Paper claim: AD-2 makes every scenario ordered, at the cost of
completeness in all lossy rows (Theorem 6's tradeoff, Example 2):

    Scenario            Ord.  Comp.  Cons.
    Lossless             ✓     ✓      ✓
    Lossy non-his.       ✓     ✗      ✓
    Lossy his. cons.     ✓     ✗      ✓
    Lossy his. aggr.     ✓     ✗      ✗
"""

from benchmarks.conftest import save_result
from repro.analysis.parallel import build_table_parallel
from repro.analysis.tables import render_table

TRIALS = 150
N_UPDATES = 40


def test_table2(benchmark):
    result = benchmark.pedantic(
        lambda: build_table_parallel(
            "table2", trials=TRIALS, n_updates=N_UPDATES, processes="auto"
        ),
        rounds=1,
        iterations=1,
    )
    text = render_table(result)
    save_result("table2", text)
    assert result.matches_paper(), text
