"""Alert-quality benchmark: per-AD precision/recall curves plus the
adaptive gate, emitted as ``BENCH_quality.json``.

Sweeps every static AD and the adaptive AD-7 over front-link loss ×
chaos intensity on the historical *aggressive* row (degree-2 deltas:
the row where the algorithms actually disagree on duplicates), scoring
each run against the single-replica ground truth.  Two claims gate CI:

* the adaptive algorithm's missed-alert rate matches or beats every
  static algorithm at **every** sweep point (exact, not statistical —
  each point runs identical seeds across algorithms), and
* its duplicate rate stays below AD-1's overall (the guard is not just
  a pass-through in disguise).

Regenerate the committed artifact / run the gates::

    PYTHONPATH=src python benchmarks/bench_quality.py
    PYTHONPATH=src python benchmarks/bench_quality.py --check
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.quality import (  # noqa: E402
    adaptive_matches_best_static,
    quality_json,
    quality_sweep,
    render_quality_table,
)

RESULT_PATH = Path(__file__).resolve().parent / "BENCH_quality.json"

DEFAULT_TRIALS = 20
DEFAULT_ROW = "aggressive"
DEFAULT_UPDATES = 30


def run_benchmark(
    trials: int = DEFAULT_TRIALS,
    row: str = DEFAULT_ROW,
    n_updates: int = DEFAULT_UPDATES,
) -> dict:
    """One full sweep; returns the BENCH_quality.json document."""
    started = time.perf_counter()
    cells = quality_sweep(trials=trials, row=row, n_updates=n_updates)
    elapsed = time.perf_counter() - started
    result = quality_json(cells, row=row, trials=trials, n_updates=n_updates)
    result["python"] = platform.python_version()
    result["elapsed_s"] = round(elapsed, 3)
    return result


def _rates_by_algorithm(result: dict) -> dict:
    """Sweep-wide mean duplicate rate per algorithm (equal cell weight)."""
    sums: dict[str, list[float]] = {}
    for cell in result["cells"]:
        sums.setdefault(cell["algorithm"], []).append(cell["duplicate_rate"])
    return {name: sum(rates) / len(rates) for name, rates in sums.items()}


def format_result(result: dict) -> str:
    lines = [
        f"quality sweep: row={result['row']} matrix={result['matrix']} "
        f"trials={result['trials']} updates={result['n_updates']} "
        f"({result['elapsed_s']:.1f}s)",
        "",
    ]
    header = (
        f"{'loss':>5} {'chaos':>6} {'algorithm':>9} {'precision':>10} "
        f"{'recall':>7} {'missed':>7} {'dup':>6} {'false':>6} "
        f"{'lat-p50':>8} {'lat-p99':>8}"
    )
    lines.append(header)
    for cell in result["cells"]:
        p50 = cell["latency_p50"]
        p99 = cell["latency_p99"]
        lines.append(
            f"{cell['front_loss']:>5g} {cell['intensity']:>6g} "
            f"{cell['algorithm']:>9} {cell['precision']:>10.3f} "
            f"{cell['recall']:>7.3f} {cell['missed_rate']:>7.3f} "
            f"{cell['duplicate_rate']:>6.3f} {cell['false_rate']:>6.3f} "
            f"{'      -' if p50 is None else f'{p50:>7.2f}':>8} "
            f"{'      -' if p99 is None else f'{p99:>7.2f}':>8}"
        )
    gate = "YES" if result["adaptive_matches_best_static"] else "NO"
    lines.append("")
    lines.append(f"adaptive missed-alert rate <= best static everywhere: {gate}")
    dup = _rates_by_algorithm(result)
    lines.append(
        "mean duplicate rate: "
        + "  ".join(f"{name}={rate:.3f}" for name, rate in sorted(dup.items()))
    )
    return "\n".join(lines)


def check(result: dict) -> int:
    """The CI gates: the adaptive recall claim plus the guard's economy."""
    failures = []
    if not result["adaptive_matches_best_static"]:
        failures.append(
            "adaptive missed-alert rate exceeds a static algorithm's at "
            "some (loss, intensity) point"
        )
    dup = _rates_by_algorithm(result)
    if "adaptive" in dup and "AD-1" in dup and dup["adaptive"] > dup["AD-1"]:
        failures.append(
            f"adaptive mean duplicate rate {dup['adaptive']:.3f} exceeds "
            f"AD-1's {dup['AD-1']:.3f} — the guard degenerated to pass-through"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            "OK: adaptive matches best-static missed rate at every sweep "
            f"point; mean duplicate rate {dup.get('adaptive', 0.0):.3f} "
            f"<= AD-1's {dup.get('AD-1', 0.0):.3f}"
        )
    return 1 if failures else 0


def test_quality_sweep(benchmark):
    """Harness entry point: reduced-trials run with artifact output."""
    from benchmarks.conftest import save_result

    result = benchmark.pedantic(
        lambda: run_benchmark(trials=5, n_updates=20), rounds=1, iterations=1
    )
    save_result("quality", format_result(result))
    assert result["adaptive_matches_best_static"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS)
    parser.add_argument("--row", default=DEFAULT_ROW)
    parser.add_argument("--updates", type=int, default=DEFAULT_UPDATES)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless both gates pass (no JSON is written)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help=f"write the result JSON here (default: {RESULT_PATH})",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(args.trials, args.row, args.updates)
    print(format_result(result))

    if args.check:
        return check(result)

    output = args.output or RESULT_PATH
    output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
