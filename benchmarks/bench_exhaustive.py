"""Exhaustive-interleaving verification of the table guarantees.

The table benches sample arrival timings; this bench closes the gap for
the ✓ cells by checking them over EVERY arrival interleaving of many
randomized trace pairs.  For each single-variable scenario row and
algorithm, it harvests the per-CE received traces from short simulated
runs and exhaustively classifies the properties.

Paper claims verified exhaustively per trace pair:

* AD-2 ordered in every interleaving (Table 2 column 1);
* AD-3 consistent in every interleaving (§4.3);
* AD-4 ordered AND consistent in every interleaving (§4.4);
* AD-1 complete in every interleaving for non-historical conditions
  (Theorem 2) and consistent for conservative ones (Theorem 3);
* lossless rows: everything, always (Theorem 1).
"""

from benchmarks.conftest import save_result
from repro.displayers.registry import make_ad
from repro.props.exhaustive import classify_trace_pair, count_merge_orders
from repro.workloads.scenarios import SINGLE_VARIABLE_SCENARIOS, run_scenario

PAIRS_PER_ROW = 40
N_UPDATES = 8
MERGE_LIMIT = 6000


def _trace_pairs(row: str):
    """Harvest (condition, traces) pairs with enumerable alert streams."""
    scenario = SINGLE_VARIABLE_SCENARIOS[row]
    pairs = []
    seed = 61000
    while len(pairs) < PAIRS_PER_ROW and seed < 62000:
        run = run_scenario(scenario, "pass", seed, n_updates=N_UPDATES)
        seed += 1
        lengths = [len(a) for a in run.ce_alerts]
        if sum(lengths) == 0 or count_merge_orders(lengths) > MERGE_LIMIT:
            continue
        pairs.append((run.condition, run.received))
    return pairs


def test_exhaustive_guarantees(benchmark):
    def run():
        stats = {}
        for row in ("lossless", "non-historical", "conservative", "aggressive"):
            pairs = _trace_pairs(row)
            row_stats = {"pairs": len(pairs), "interleavings": 0}
            for algorithm in ("AD-1", "AD-2", "AD-3", "AD-4"):
                always_ordered = 0
                always_consistent = 0
                always_complete = 0
                for condition, traces in pairs:
                    report = classify_trace_pair(
                        condition,
                        traces,
                        lambda: make_ad(algorithm, condition),
                        limit=MERGE_LIMIT,
                    )
                    row_stats["interleavings"] += report.interleavings
                    if report.ordered.verdict == "always":
                        always_ordered += 1
                    if report.consistent.verdict == "always":
                        always_consistent += 1
                    if report.complete is not None and report.complete.verdict == "always":
                        always_complete += 1
                row_stats[algorithm] = (
                    always_ordered,
                    always_complete,
                    always_consistent,
                )
            stats[row] = row_stats
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Exhaustive interleaving check: #pairs where property holds in "
        "EVERY interleaving / #pairs",
    ]
    for row, row_stats in stats.items():
        pairs = row_stats["pairs"]
        lines.append(
            f"\n[{row}] {pairs} trace pairs, "
            f"{row_stats['interleavings']} total interleavings replayed"
        )
        lines.append(f"{'algo':>6} {'ordered':>10} {'complete':>10} {'consistent':>11}")
        for algorithm in ("AD-1", "AD-2", "AD-3", "AD-4"):
            o, comp, cons = row_stats[algorithm]
            lines.append(
                f"{algorithm:>6} {o:>7}/{pairs} {comp:>7}/{pairs} {cons:>8}/{pairs}"
            )
    text = "\n".join(lines)
    save_result("exhaustive", text)

    for row, row_stats in stats.items():
        pairs = row_stats["pairs"]
        assert pairs > 0, f"no enumerable pairs for {row}"
        # Universal guarantees hold for EVERY pair in EVERY interleaving:
        assert row_stats["AD-2"][0] == pairs, f"{row}: AD-2 orderedness"
        assert row_stats["AD-3"][2] == pairs, f"{row}: AD-3 consistency"
        assert row_stats["AD-4"][0] == pairs, f"{row}: AD-4 orderedness"
        assert row_stats["AD-4"][2] == pairs, f"{row}: AD-4 consistency"
        if row == "lossless":
            assert row_stats["AD-1"] == (pairs, pairs, pairs)
        if row == "non-historical":
            assert row_stats["AD-1"][1] == pairs  # Theorem 2: complete
        if row == "conservative":
            assert row_stats["AD-1"][2] == pairs  # Theorem 3: consistent
