"""Membership benchmark — what detection + catch-up costs and buys.

Sweeps churn intensity × failure-detector timeout over the aggressive
single-variable cell (the scenario whose historical condition makes
crash gaps *visible* as property violations) and reports, per intensity:

* **detection latency** p50/p99 — crash start → suspicion, over every
  detected crash in the recovery cells;
* **MTTR** p50/p99 — crash start → state-complete, over every successful
  catch-up;
* **missed-alert rate** — baseline (membership off) vs. the best
  recovery cell, the Figure-1-style payoff of the lifecycle;
* **missed detections** — crashes the unreliable detector never noticed.

Two gates ride on the numbers:

1. the sweep must satisfy :func:`repro.faults.recovery_restores_alerts`
   (recovery strictly reduces missed alerts wherever the baseline
   misses any, and never makes them worse), and
2. **membership-off overhead**: per-trial seconds on membership-*less*
   specs must stay within ``--tolerance`` (default 1.05×) of the
   committed baseline in ``BENCH_membership.json`` — the lifecycle
   machinery must be free when it is switched off.

Run directly (writes ``benchmarks/BENCH_membership.json``)::

    PYTHONPATH=src python benchmarks/bench_membership.py

CI churn-smoke gate (reduced trials, best-of-``--repeat`` timing)::

    PYTHONPATH=src python benchmarks/bench_membership.py \
        --trials 10 --repeat 3 --check --tolerance 1.05 \
        --check-against benchmarks/BENCH_membership.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.faults import (
    churn_specs,
    churn_sweep,
    recovery_restores_alerts,
    render_churn_table,
)
from repro.workloads.scenarios import run_scenario

INTENSITIES = (0.5, 1.0, 2.0)
DETECTION_TIMEOUTS = (None, 2.0, 4.0, 8.0)
#: The recovery cell whose latency distributions are published.
REFERENCE_TIMEOUT = 4.0
CATCHUP_LATENCY = 2.0
DEFAULT_TRIALS = 20
DEFAULT_TOLERANCE = 1.05
RESULT_PATH = Path(__file__).resolve().parent / "BENCH_membership.json"


def percentile(samples: list[float], q: float) -> float | None:
    """Nearest-rank percentile (no interpolation, no numpy)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


def _run_spec(spec):
    """Execute one churn spec at the RunResult level (the benchmark needs
    the executed plan's raw latency samples, not just the report)."""
    return run_scenario(
        spec.resolve_scenario(),
        spec.algorithm,
        spec.seed,
        n_updates=spec.n_updates,
        replication=spec.replication,
        faults=spec.faults,
        membership=spec.membership,
        kernel=spec.kernel,
    )


def latency_distributions(trials: int) -> dict:
    """Per-intensity detection-latency and MTTR distributions at the
    reference recovery cell (same seeds the sweep's cells run)."""
    out = {}
    for intensity in INTENSITIES:
        detection: list[float] = []
        recovery: list[float] = []
        missed = 0
        crashes = 0
        for spec in churn_specs(
            intensity, REFERENCE_TIMEOUT, CATCHUP_LATENCY, trials
        ):
            plan = _run_spec(spec).membership
            detection.extend(plan.detection_latencies)
            recovery.extend(plan.recovery_latencies)
            missed += plan.missed_detections
            crashes += len(plan.recoveries)
        out[f"{intensity:g}"] = {
            "crash_windows": crashes,
            "detection_p50": percentile(detection, 50),
            "detection_p99": percentile(detection, 99),
            "mttr_p50": percentile(recovery, 50),
            "mttr_p99": percentile(recovery, 99),
            "missed_detections": missed,
            "missed_detection_rate": round(missed / crashes, 3) if crashes else None,
        }
    return out


def miss_rates(cells) -> dict:
    """Baseline vs. best-recovery missed-alert fraction per intensity."""
    out = {}
    for intensity in INTENSITIES:
        group = [c for c in cells if c.intensity == intensity]
        baseline = next(c for c in group if c.detection_timeout is None)
        recovered = [c for c in group if c.detection_timeout is not None]
        best = min(recovered, key=lambda c: c.mean_miss_fraction)
        out[f"{intensity:g}"] = {
            "baseline_miss": round(baseline.mean_miss_fraction, 4),
            "best_recovery_miss": round(best.mean_miss_fraction, 4),
            "best_detection_timeout": best.detection_timeout,
            "caught_up": best.caught_up,
            "violations_steady_baseline": baseline.violations_steady,
            "violations_degraded_best": best.violations_degraded,
            "violations_steady_best": best.violations_steady,
        }
    return out


def time_overhead(trials: int, repeat: int) -> dict:
    """Best-of-``repeat`` per-trial seconds, membership off vs. on.

    The *off* number is the gated one: specs identical to the baseline
    churn cells (crash faults active, ``membership=None``) must not pay
    for machinery they do not use.  The on/off ratio documents what the
    lifecycle costs when it does run.
    """
    off_specs = churn_specs(1.0, None, CATCHUP_LATENCY, trials)
    on_specs = churn_specs(1.0, REFERENCE_TIMEOUT, CATCHUP_LATENCY, trials)

    def sweep(specs):
        start = time.perf_counter()
        for spec in specs:
            spec.execute()
        return time.perf_counter() - start

    off = min(sweep(off_specs) for _ in range(repeat)) / trials
    on = min(sweep(on_specs) for _ in range(repeat)) / trials
    return {
        "off_s_per_trial": round(off, 6),
        "on_s_per_trial": round(on, 6),
        "on_vs_off": round(on / off, 3) if off > 0 else None,
    }


def run_benchmark(trials: int, repeat: int) -> dict:
    cells = churn_sweep(
        intensities=INTENSITIES,
        detection_timeouts=DETECTION_TIMEOUTS,
        catchup_latencies=(CATCHUP_LATENCY,),
        trials=trials,
    )
    return {
        "cell": "single/aggressive pass replication=2",
        "trials": trials,
        "python": platform.python_version(),
        "restores_alerts": recovery_restores_alerts(cells),
        "latencies": latency_distributions(trials),
        "miss_rates": miss_rates(cells),
        "timings": time_overhead(trials, repeat),
        "table": render_churn_table(cells),
    }


def format_result(result: dict) -> str:
    lines = [result["table"], ""]
    for intensity, row in result["latencies"].items():
        lines.append(
            f"intensity {intensity}: detection p50/p99 = "
            f"{row['detection_p50']:.1f}/{row['detection_p99']:.1f}, "
            f"MTTR p50/p99 = {row['mttr_p50']:.1f}/{row['mttr_p99']:.1f}, "
            f"missed detections {row['missed_detections']}/{row['crash_windows']}"
        )
    for intensity, row in result["miss_rates"].items():
        lines.append(
            f"intensity {intensity}: missed-alert rate "
            f"{row['baseline_miss']:.3f} (no recovery) -> "
            f"{row['best_recovery_miss']:.3f} "
            f"(detect={row['best_detection_timeout']:g}, "
            f"{row['caught_up']} updates caught up)"
        )
    t = result["timings"]
    lines.append(
        f"membership off {t['off_s_per_trial'] * 1e3:.2f} ms/trial, "
        f"on {t['on_s_per_trial'] * 1e3:.2f} ms/trial "
        f"({t['on_vs_off']}x)"
    )
    lines.append(
        "recovery restores alerts: "
        + ("YES" if result["restores_alerts"] else "NO")
    )
    return "\n".join(lines)


def check(result: dict, baseline_path: Path, tolerance: float) -> int:
    """The CI gates: the restoration claim plus the off-overhead bound."""
    failures = []
    if not result["restores_alerts"]:
        failures.append("recovery does not reduce missed alerts vs crash-only")
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        committed = baseline["timings"]["off_s_per_trial"]
        measured = result["timings"]["off_s_per_trial"]
        if measured > committed * tolerance:
            failures.append(
                f"membership-off overhead: {measured * 1e3:.2f} ms/trial "
                f"exceeds {tolerance}x committed baseline "
                f"({committed * 1e3:.2f} ms/trial)"
            )
    else:
        failures.append(f"no committed baseline at {baseline_path}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"OK: recovery restores alerts; membership-off "
            f"{result['timings']['off_s_per_trial'] * 1e3:.2f} ms/trial "
            f"within {tolerance}x baseline"
        )
    return 1 if failures else 0


def test_membership_sweep(benchmark):
    """Harness entry point: reduced-trials run with artifact output."""
    from benchmarks.conftest import save_result

    result = benchmark.pedantic(
        lambda: run_benchmark(trials=10, repeat=1), rounds=1, iterations=1
    )
    save_result("membership", format_result(result))
    assert result["restores_alerts"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless both gates pass (no JSON is written)",
    )
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--check-against", type=Path, default=RESULT_PATH,
        help="committed baseline JSON for the overhead gate",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help=f"write the result JSON here (default: {RESULT_PATH})",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(args.trials, args.repeat)
    print(format_result(result))

    if args.check:
        return check(result, args.check_against, args.tolerance)

    output = args.output or RESULT_PATH
    output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
