"""Table 1 — single-variable systems under Algorithm AD-1.

Paper claim (Theorems 1-4):

    Scenario            Ord.  Comp.  Cons.
    Lossless             ✓     ✓      ✓
    Lossy non-his.       ✗     ✓      ✓
    Lossy his. cons.     ✗     ✗      ✓
    Lossy his. aggr.     ✗     ✗      ✗

This bench runs the full randomized trial matrix (two CEs, lossy/lossless
front links, paper conditions c1/c2/c3) and regenerates the grid.  ✓ rows
are checked over every trial; each measured ✗ retains a counterexample
seed in the saved artifact.
"""

from benchmarks.conftest import save_result
from repro.analysis.parallel import build_table_parallel
from repro.analysis.tables import render_table

TRIALS = 150
N_UPDATES = 40


def test_table1(benchmark):
    result = benchmark.pedantic(
        lambda: build_table_parallel(
            "table1", trials=TRIALS, n_updates=N_UPDATES, processes="auto"
        ),
        rounds=1,
        iterations=1,
    )
    text = render_table(result)
    for row, tally in result.tallies.items():
        text += f"\n  [{row}] witnesses: {tally.witnesses or 'none needed'}"
    save_result("table1", text)
    assert result.matches_paper(), text
