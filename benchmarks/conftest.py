"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (a table, a theorem claim,
or the Figure-1 motivation sweep), prints the regenerated rows, and saves
them under ``benchmarks/results/`` so EXPERIMENTS.md can reference them.
Run with::

    pytest benchmarks/ --benchmark-only

Timing is reported by pytest-benchmark; the artifact checks are plain
assertions, so a benchmark run is also a correctness run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Print an artifact and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
