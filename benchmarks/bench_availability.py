"""Figure-1 motivation — replication reduces the chance of missing alerts.

The paper's Figure 1 is a system diagram, not a data plot, but its entire
premise is quantitative: "redundancy in the system reduces the
probability that a critical alert will not be delivered on time (or at
all)".  This bench sweeps front-link loss p ∈ {0 … 0.5} × replication
r ∈ {1, 2, 3} with CE crash/repair cycles, and reports the fraction of
ground-truth alerts that never reached the user.

Expected shape: miss fraction decreasing roughly geometrically in the
number of CEs at every loss level, and increasing in p for every r.
"""

from benchmarks.conftest import save_result
from repro.analysis.experiments import availability_experiment
from repro.faults import chaos_sweep, render_chaos_table, replication_reduces_misses

LOSS_PROBS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
REPLICATIONS = (1, 2, 3)
TRIALS = 60


def test_availability(benchmark):
    points = benchmark.pedantic(
        lambda: availability_experiment(
            loss_probs=LOSS_PROBS, replications=REPLICATIONS, trials=TRIALS
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"Missed-alert fraction vs replication ({TRIALS} trials/point, "
        "CE crash rate 0.004, mean repair 60)",
        f"{'loss':>6} {'CEs':>4} {'mean miss':>10} {'any-miss runs':>14}",
    ]
    by_key = {}
    for p in points:
        by_key[(p.front_loss, p.replication)] = p
        lines.append(
            f"{p.front_loss:>6} {p.replication:>4} "
            f"{p.mean_miss_fraction:>10.3f} {p.any_alert_missed_fraction:>14.2f}"
        )
    text = "\n".join(lines)
    save_result("availability", text)

    # Shape check: at every loss level, more CEs -> fewer missed alerts.
    for loss in LOSS_PROBS:
        m1 = by_key[(loss, 1)].mean_miss_fraction
        m2 = by_key[(loss, 2)].mean_miss_fraction
        m3 = by_key[(loss, 3)].mean_miss_fraction
        assert m2 <= m1, f"2 CEs worse than 1 at loss={loss}"
        assert m3 <= m2 + 0.02, f"3 CEs worse than 2 at loss={loss}"
    # And replication buys a large factor at moderate loss:
    assert by_key[(0.2, 2)].mean_miss_fraction < 0.6 * by_key[(0.2, 1)].mean_miss_fraction


def test_availability_under_chaos(benchmark):
    """Figure-1 shape under the full fault model, not just link loss.

    The chaos sweep layers CE/DM/AD crashes, link outages, burst loss,
    duplication and congestion spikes on top of the scenario's own loss;
    the claim stays the same — at every chaos intensity, adding CEs does
    not increase (and at some intensity strictly reduces) the fraction of
    ground-truth alerts the user never sees.
    """
    cells = benchmark.pedantic(
        lambda: chaos_sweep(
            intensities=(0.0, 0.5, 1.0, 2.0),
            replications=REPLICATIONS,
            trials=25,
            n_updates=30,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("availability_chaos", render_chaos_table(cells))
    assert replication_reduces_misses(cells), (
        "replication failed to reduce missed alerts under chaos:\n"
        + render_chaos_table(cells)
    )
    # Faults hurt: at the top intensity, single-CE misses must exceed the
    # clean sweep's (the fault model is actually doing something).
    by_key = {(c.intensity, c.replication): c for c in cells}
    assert (
        by_key[(2.0, 1)].mean_miss_fraction
        > by_key[(0.0, 1)].mean_miss_fraction
    )
