"""Figure-1 motivation — replication reduces the chance of missing alerts.

The paper's Figure 1 is a system diagram, not a data plot, but its entire
premise is quantitative: "redundancy in the system reduces the
probability that a critical alert will not be delivered on time (or at
all)".  This bench sweeps front-link loss p ∈ {0 … 0.5} × replication
r ∈ {1, 2, 3} with CE crash/repair cycles, and reports the fraction of
ground-truth alerts that never reached the user.

Expected shape: miss fraction decreasing roughly geometrically in the
number of CEs at every loss level, and increasing in p for every r.
"""

from benchmarks.conftest import save_result
from repro.analysis.experiments import availability_experiment

LOSS_PROBS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
REPLICATIONS = (1, 2, 3)
TRIALS = 60


def test_availability(benchmark):
    points = benchmark.pedantic(
        lambda: availability_experiment(
            loss_probs=LOSS_PROBS, replications=REPLICATIONS, trials=TRIALS
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"Missed-alert fraction vs replication ({TRIALS} trials/point, "
        "CE crash rate 0.004, mean repair 60)",
        f"{'loss':>6} {'CEs':>4} {'mean miss':>10} {'any-miss runs':>14}",
    ]
    by_key = {}
    for p in points:
        by_key[(p.front_loss, p.replication)] = p
        lines.append(
            f"{p.front_loss:>6} {p.replication:>4} "
            f"{p.mean_miss_fraction:>10.3f} {p.any_alert_missed_fraction:>14.2f}"
        )
    text = "\n".join(lines)
    save_result("availability", text)

    # Shape check: at every loss level, more CEs -> fewer missed alerts.
    for loss in LOSS_PROBS:
        m1 = by_key[(loss, 1)].mean_miss_fraction
        m2 = by_key[(loss, 2)].mean_miss_fraction
        m3 = by_key[(loss, 3)].mean_miss_fraction
        assert m2 <= m1, f"2 CEs worse than 1 at loss={loss}"
        assert m3 <= m2 + 0.02, f"3 CEs worse than 2 at loss={loss}"
    # And replication buys a large factor at moderate loss:
    assert by_key[(0.2, 2)].mean_miss_fraction < 0.6 * by_key[(0.2, 1)].mean_miss_fraction
