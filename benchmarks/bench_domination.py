"""Theorems 6 and 8 — the domination order among AD algorithms (§4.1).

* Theorem 6: AD-1 > AD-2 — AD-1's output is always a supersequence of
  AD-2's on the same arrival stream, strictly so on some streams.
* Theorem 8: AD-1 > AD-3 — likewise.
* Extension: AD-1 > AD-4 (implied: AD-4 filters whatever either parent
  filters).

The bench replays hundreds of simulated arrival streams (drawn across all
four scenario rows) through fresh copies of both algorithms per pair and
verifies the supersequence relation stream by stream.
"""

from benchmarks.conftest import save_result
from repro.analysis.experiments import domination_experiment

TRIALS = 400
N_UPDATES = 35


def test_domination(benchmark):
    results = benchmark.pedantic(
        lambda: domination_experiment(trials=TRIALS, n_updates=N_UPDATES),
        rounds=1,
        iterations=1,
    )
    lines = ["Domination (paper: dominates=always, strict witness exists)"]
    lines.append(f"{'pair':<24} {'streams':>8} {'violations':>11} {'strict':>7}")
    ok = True
    for name, result in results.items():
        lines.append(
            f"{name:<24} {result.streams:>8} {result.violations:>11} "
            f"{result.strict_witnesses:>7}"
        )
        ok = ok and result.dominates and result.strictly_dominates
    text = "\n".join(lines) + f"\npaper agreement: {'YES' if ok else 'NO'}"
    save_result("domination", text)
    for name, result in results.items():
        assert result.dominates, f"{name}: domination violated"
        assert result.strictly_dominates, f"{name}: no strictness witness found"
