"""Figure-1 motivation, "on time" half: replication shortens notification
latency.

Section 1 claims replication "reduces the probability that a critical
alert will not be delivered on time (or at all)".  bench_availability
measures "at all"; this bench measures "on time": with r replicas, the
first display of each alert is the minimum over r independent network
paths, so mean and tail latency shrink as r grows — even at zero loss.
Under loss the effect compounds: an update missed by one CE may still be
alerted promptly by another.
"""

from benchmarks.conftest import save_result
from repro.analysis.latency import latency_stats, notification_latencies
from repro.components.system import SystemConfig, run_system
from repro.core.condition import c1
from repro.simulation.rng import RandomStreams
from repro.workloads.generators import threshold_crossers

TRIALS = 60
N_UPDATES = 30
LOSSES = (0.0, 0.2)
REPLICATIONS = (1, 2, 3)


def test_notification_latency(benchmark):
    def run():
        rows = []
        for loss in LOSSES:
            for replication in REPLICATIONS:
                all_latencies = []
                for seed in range(TRIALS):
                    streams = RandomStreams(90_000 + seed)
                    workload = {
                        "x": threshold_crossers(streams.stream("w"), N_UPDATES)
                    }
                    config = SystemConfig(
                        replication=replication, front_loss=loss
                    )
                    result = run_system(c1(), workload, config, seed=seed)
                    all_latencies.extend(notification_latencies(result))
                rows.append((loss, replication, latency_stats(all_latencies)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"First-notification latency vs replication ({TRIALS} runs/point)",
        f"{'loss':>6} {'CEs':>4} {'mean':>8} {'median':>8} {'p95':>8} "
        f"{'missed':>8}",
    ]
    stats_by_key = {}
    for loss, replication, stats in rows:
        stats_by_key[(loss, replication)] = stats
        lines.append(
            f"{loss:>6} {replication:>4} {stats.mean:>8.2f} "
            f"{stats.median:>8.2f} {stats.p95:>8.2f} "
            f"{stats.miss_fraction:>8.2%}"
        )
    text = "\n".join(lines)
    save_result("latency", text)

    for loss in LOSSES:
        one = stats_by_key[(loss, 1)]
        two = stats_by_key[(loss, 2)]
        three = stats_by_key[(loss, 3)]
        # Racing replicas strictly improves mean and tail latency:
        assert two.mean < one.mean
        assert three.mean <= two.mean + 0.2
        assert two.p95 <= one.p95
        # And the "at all" half improves alongside:
        assert two.miss_fraction <= one.miss_fraction
