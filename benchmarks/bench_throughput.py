"""Micro-benchmarks (not in the paper): throughput of the moving parts.

Times the CE evaluation loop and each AD filtering algorithm over long
replayed streams — the operational cost of the guarantees.  AD-1 pays a
set lookup per alert, AD-2/AD-5 an O(1) compare, AD-3/AD-4/AD-6 set
algebra over history spans; all should be microseconds per alert.
"""

import random

import pytest

from repro.core.condition import c1, c2, cm
from repro.core.evaluator import ConditionEvaluator
from repro.core.update import Update
from repro.displayers import AD1, AD2, AD3, AD4, AD5, AD6
from tests.conftest import alert_deg2, alert_xy

N_ALERTS = 2000


def _deg2_stream():
    rng = random.Random(7)
    stream = []
    for _ in range(N_ALERTS):
        head = rng.randint(5, 500)
        stream.append(alert_deg2(head, head - rng.randint(1, 3)))
    return stream


def _xy_stream():
    rng = random.Random(8)
    return [
        alert_xy(rng.randint(1, 300), rng.randint(1, 300))
        for _ in range(N_ALERTS)
    ]


@pytest.fixture(scope="module")
def deg2_stream():
    return _deg2_stream()


@pytest.fixture(scope="module")
def xy_stream():
    return _xy_stream()


def test_evaluator_throughput_c1(benchmark):
    updates = [
        Update("x", i + 1, 2900.0 + (i % 7) * 50.0) for i in range(N_ALERTS)
    ]

    def run():
        ce = ConditionEvaluator(c1())
        ce.ingest_all(updates)
        return len(ce.alerts)

    assert benchmark(run) > 0


def test_evaluator_throughput_c2(benchmark):
    rng = random.Random(9)
    updates = [
        Update("x", i + 1, 1000.0 + rng.uniform(-300, 300)) for i in range(N_ALERTS)
    ]

    def run():
        ce = ConditionEvaluator(c2())
        ce.ingest_all(updates)
        return len(ce.received)

    assert benchmark(run) == N_ALERTS


def test_evaluator_throughput_cm(benchmark):
    rng = random.Random(10)
    updates = []
    for i in range(N_ALERTS // 2):
        updates.append(Update("x", i + 1, 1000.0 + rng.uniform(-200, 200)))
        updates.append(Update("y", i + 1, 1000.0 + rng.uniform(-200, 200)))

    def run():
        ce = ConditionEvaluator(cm())
        ce.ingest_all(updates)
        return len(ce.received)

    assert benchmark(run) == N_ALERTS


@pytest.mark.parametrize(
    "factory",
    [AD1, lambda: AD2("x"), lambda: AD3("x"), lambda: AD4("x")],
    ids=["AD-1", "AD-2", "AD-3", "AD-4"],
)
def test_single_variable_ad_throughput(benchmark, deg2_stream, factory):
    def run():
        ad = factory()
        ad.offer_all(deg2_stream)
        return len(ad.output)

    assert benchmark(run) > 0


@pytest.mark.parametrize(
    "factory",
    [lambda: AD5(("x", "y")), lambda: AD6(("x", "y"))],
    ids=["AD-5", "AD-6"],
)
def test_multi_variable_ad_throughput(benchmark, xy_stream, factory):
    def run():
        ad = factory()
        ad.offer_all(xy_stream)
        return len(ad.output)

    assert benchmark(run) > 0


def test_simulation_throughput(benchmark):
    """End-to-end: a full 2-CE run per iteration."""
    from repro.components.system import SystemConfig, run_system

    workload = {"x": [(t * 10.0, 2900.0 + (t % 9) * 40.0) for t in range(100)]}
    config = SystemConfig(replication=2, front_loss=0.2)

    def run():
        return len(run_system(c1(), workload, config, seed=3).displayed)

    benchmark(run)
