"""Minimal witnesses for the paper tables' ✗-cells, pinned by size.

For each ✗-cell of Tables 1–3 (plus the multi-variable lossless
completeness gap, which the paper calls out in §5.1), this script finds
the first violating seed by a deterministic forward scan, shrinks it
with the full-simulator delta debugger (:func:`repro.fuzz.shrink_spec`)
and records the witness and its size in
``benchmarks/results/min_witnesses.json``.

The committed sizes are a *regression floor* for the shrinker:
``tests/integration/test_min_witness_regression.py`` re-derives every
witness — the procedure is deterministic, so this is exact — and fails
if any witness got **larger** than the committed one (a shrinker
regression) or stopped violating (a simulator/checker drift).  Witnesses
getting *smaller* is progress; re-run this script and commit the new
sizes.

Run::

    PYTHONPATH=src python benchmarks/min_witnesses.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.witness import violates
from repro.engine.spec import TrialSpec
from repro.fuzz import shrink_spec
from repro.fuzz.shrink import ShrinkResult

RESULT_PATH = (
    Path(__file__).resolve().parent / "results" / "min_witnesses.json"
)

#: (cell id, matrix, row, algorithm, target) for every pinned ✗-cell.
#: Reading counts: 12 keeps single-variable scans cheap; the
#: multi-variable cells use 8 because each run costs several times more.
CELLS: tuple[tuple[str, str, str, str, str], ...] = (
    # Table 1: single variable under AD-1.
    ("table1/non-historical/ordered", "single", "non-historical", "AD-1", "ordered"),
    ("table1/conservative/complete", "single", "conservative", "AD-1", "complete"),
    ("table1/aggressive/consistent", "single", "aggressive", "AD-1", "consistent"),
    # Table 2: single variable under AD-2.
    ("table2/non-historical/complete", "single", "non-historical", "AD-2", "complete"),
    ("table2/aggressive/complete", "single", "aggressive", "AD-2", "complete"),
    ("table2/aggressive/consistent", "single", "aggressive", "AD-2", "consistent"),
    # Table 3: multi variable under AD-5.
    ("table3/lossless/complete", "multi", "lossless", "AD-5", "complete"),
    ("table3/aggressive/consistent", "multi", "aggressive", "AD-5", "consistent"),
)

_SCAN = 400


def start_updates(matrix: str) -> int:
    return 8 if matrix == "multi" else 12


def derive_witness(
    matrix: str, row: str, algorithm: str, target: str
) -> ShrinkResult:
    """First violating seed (forward scan from 0), shrunk. Deterministic."""
    n_updates = start_updates(matrix)
    for seed in range(_SCAN):
        spec = TrialSpec(matrix, row, algorithm, seed, n_updates)
        if violates(spec.execute(), target):
            return shrink_spec(spec, target)
    raise AssertionError(
        f"no {target} violation on {matrix}/{row} {algorithm} in "
        f"{_SCAN} seeds — is this still a ✗-cell?"
    )


def witness_entry(cell_id: str, result: ShrinkResult) -> dict:
    spec = result.spec
    return {
        "cell": cell_id,
        "target": result.target,
        "witness": {
            "matrix": spec.matrix,
            "row": spec.row,
            "algorithm": spec.algorithm,
            "seed": spec.seed,
            "n_updates": spec.n_updates,
            "replication": spec.replication,
            "front_loss": spec.front_loss,
        },
        "size": {
            "n_updates": spec.n_updates,
            "total_updates": result.counterexample.total_updates,
            "displayed": len(result.counterexample.displayed),
        },
        "shrink": {"attempts": result.attempts, "passes": result.passes},
        "trace_events": len(result.trace.events),
    }


def main() -> int:
    entries = []
    for cell_id, matrix, row, algorithm, target in CELLS:
        result = derive_witness(matrix, row, algorithm, target)
        entry = witness_entry(cell_id, result)
        entries.append(entry)
        size = entry["size"]
        print(
            f"{cell_id}: seed={entry['witness']['seed']} "
            f"n_updates={size['n_updates']} "
            f"total_updates={size['total_updates']} "
            f"displayed={size['displayed']} "
            f"({entry['shrink']['attempts']} shrink runs)"
        )
    RESULT_PATH.parent.mkdir(exist_ok=True)
    RESULT_PATH.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
