"""Theorems 1-4 — the per-row claims behind Table 1, checked two ways.

1. **Targeted**: the exact counterexample traces from the paper's proofs
   (Appendix B) replayed deterministically.
2. **Sweep**: randomized trials per theorem with the property checkers
   deciding each run, reporting violation *rates* (how often the ✗ of a
   row actually bites at loss p = 0.3) — the quantitative texture behind
   the paper's qualitative grid.
"""

from benchmarks.conftest import save_result
from repro.displayers import AD1
from repro.engine import TrialEngine, TrialSpec
from repro.props.report import PropertyTally
from repro.workloads.scenarios import SINGLE_VARIABLE_SCENARIOS
from repro.workloads.traces import theorem_3_example, theorem_4_example

TRIALS = 200
N_UPDATES = 40


def _sweep(row: str, engine: TrialEngine) -> PropertyTally:
    specs = [
        TrialSpec("single", row, "AD-1", 31000 + trial, N_UPDATES)
        for trial in range(TRIALS)
    ]
    return engine.run_tally(specs)


def _rate(violations: int, checked: int) -> str:
    if checked == 0:
        return "n/a"
    return f"{violations / checked:.2%}"


def test_theorem_rates(benchmark):
    def sweep_all():
        with TrialEngine(processes="auto") as engine:
            return {row: _sweep(row, engine) for row in SINGLE_VARIABLE_SCENARIOS}

    tallies = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    lines = [
        f"Violation rates under AD-1, {TRIALS} trials x {N_UPDATES} updates, loss=0.3",
        f"{'scenario':<16} {'unordered':>10} {'incomplete':>11} {'inconsistent':>13}",
    ]
    for row, tally in tallies.items():
        lines.append(
            f"{row:<16} {_rate(tally.ordered_violations, tally.runs):>10} "
            f"{_rate(tally.completeness_violations, tally.completeness_checked):>11} "
            f"{_rate(tally.consistency_violations, tally.consistency_checked):>13}"
        )
    text = "\n".join(lines)
    save_result("theorem_rates", text)

    # Theorem 1: lossless rows never violate anything.
    lossless = tallies["lossless"]
    assert lossless.always_ordered and lossless.always_complete
    # Theorem 2: non-historical stays complete, loses order.
    assert tallies["non-historical"].always_complete
    assert tallies["non-historical"].ordered_violations > 0
    # Theorem 3: conservative stays consistent, loses order + completeness.
    assert tallies["conservative"].always_consistent
    assert tallies["conservative"].completeness_violations > 0
    # Theorem 4: aggressive loses consistency.
    assert tallies["aggressive"].consistency_violations > 0


def test_theorem3_counterexample(benchmark):
    def run():
        ex = theorem_3_example()
        displayed = ex.display(AD1(), [1, 0])
        return ex, displayed

    ex, displayed = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.core.reference import merge_single_variable
    from repro.props.completeness import check_completeness_single
    from repro.props.consistency import check_consistency_single
    from repro.props.orderedness import is_alert_sequence_ordered

    merged = merge_single_variable(ex.traces[0], ex.traces[1])
    assert not is_alert_sequence_ordered(displayed, ["x"])
    assert not check_completeness_single(displayed, ex.condition, merged)
    assert check_consistency_single(displayed, "x")
    save_result(
        "theorem3_counterexample",
        "Theorem 3 counterexample reproduced: "
        f"A = {[a.shorthand() for a in displayed]} "
        "(consistent, unordered, incomplete) — matches paper.",
    )


def test_theorem4_counterexample(benchmark):
    def run():
        ex = theorem_4_example()
        displayed = ex.display(AD1(), [0, 1])
        return ex, displayed

    ex, displayed = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.props.consistency import check_consistency_single

    assert not check_consistency_single(displayed, "x")
    save_result(
        "theorem4_counterexample",
        "Theorem 4 counterexample reproduced: "
        f"A = {[a.shorthand() for a in displayed]} is inconsistent — "
        "no single input sequence explains both alerts; matches paper.",
    )
