"""Bounded-exhaustive verification of the algorithm guarantees, at scale.

Proof-by-exhaustion versions of the ✓ columns: every stream over a
degree-2 alert alphabet up to length 5 (46k+ streams, every prefix
checked) for the single-variable algorithms, and a two-variable alphabet
for AD-5/AD-6.  A single violating stream anywhere in the space would
refute the corresponding theorem.
"""

from benchmarks.conftest import save_result
from repro.analysis.experiments import (
    consistency_property,
    strict_orderedness_property,
)
from repro.displayers import AD2, AD3, AD4, AD5, AD6
from repro.props.consistency import check_consistency_multi
from repro.props.orderedness import is_alert_sequence_ordered
from repro.props.statespace import (
    degree2_alphabet,
    two_variable_alphabet,
    verify_invariant_exhaustively,
)

SINGLE_LENGTH = 5
MULTI_LENGTH = 4


def test_exhaustive_state_space(benchmark):
    def run():
        ordered = strict_orderedness_property("x")
        consistent = consistency_property("x")
        alphabet = degree2_alphabet(max_seqno=4)
        xy_alphabet = two_variable_alphabet(max_seqno=3)
        outcomes = {}
        outcomes["AD-2 ordered"] = verify_invariant_exhaustively(
            lambda: AD2("x"), alphabet, SINGLE_LENGTH, ordered
        )
        outcomes["AD-3 consistent"] = verify_invariant_exhaustively(
            lambda: AD3("x"), alphabet, SINGLE_LENGTH, consistent
        )
        outcomes["AD-4 both"] = verify_invariant_exhaustively(
            lambda: AD4("x"),
            alphabet,
            SINGLE_LENGTH,
            lambda d: ordered(d) and consistent(d),
        )
        outcomes["AD-5 ordered"] = verify_invariant_exhaustively(
            lambda: AD5(("x", "y")),
            xy_alphabet,
            MULTI_LENGTH,
            lambda d: is_alert_sequence_ordered(list(d), ["x", "y"]),
        )
        outcomes["AD-6 both"] = verify_invariant_exhaustively(
            lambda: AD6(("x", "y")),
            xy_alphabet,
            MULTI_LENGTH,
            lambda d: (
                is_alert_sequence_ordered(list(d), ["x", "y"])
                and bool(check_consistency_multi(list(d), ["x", "y"]))
            ),
        )
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Bounded-exhaustive guarantee verification"]
    lines.append(f"{'claim':<18} {'streams':>9} {'states':>9} {'verdict':>9}")
    for name, result in outcomes.items():
        lines.append(
            f"{name:<18} {result.streams_checked:>9} "
            f"{result.states_visited:>9} "
            f"{'HOLDS' if result.holds else 'VIOLATED':>9}"
        )
    text = "\n".join(lines)
    save_result("statespace", text)
    for name, result in outcomes.items():
        assert result.holds, f"{name} violated: {result.violation}"
